//! Per-iteration delivery reports and cumulative performance counters.

use std::fmt;
use std::ops::{Add, AddAssign};

/// Which structure delivered a span of µops.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UopSource {
    /// Loop Stream Detector.
    Lsd,
    /// Decoded Stream Buffer (micro-op cache).
    Dsb,
    /// Legacy decode pipeline.
    Mite,
}

impl fmt::Display for UopSource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            UopSource::Lsd => "LSD",
            UopSource::Dsb => "DSB",
            UopSource::Mite => "MITE",
        };
        f.write_str(s)
    }
}

/// Everything the frontend did while delivering one loop iteration (or any
/// batch of work): cycles consumed, µops per source, and event counts.
///
/// Reports are additive: summing the per-iteration reports of a run yields
/// the run totals, which is how the Fig. 4 counter readings and all channel
/// timings are produced.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct IterationReport {
    /// Cycles consumed by the frontend for this work.
    pub cycles: f64,
    /// µops streamed from the LSD.
    pub lsd_uops: u64,
    /// µops delivered from the DSB.
    pub dsb_uops: u64,
    /// µops decoded by the MITE.
    pub mite_uops: u64,
    /// Cycles lost to Length-Changing-Prefix pre-decode stalls.
    pub lcp_stall_cycles: f64,
    /// Cycles lost to DSB↔MITE switch penalties.
    pub switch_penalty_cycles: f64,
    /// Cycles lost to window-crossing (misaligned) fetch splits.
    pub crossing_penalty_cycles: f64,
    /// Number of DSB→MITE switches.
    pub dsb_to_mite_switches: u64,
    /// Lines evicted from the DSB.
    pub dsb_evictions: u64,
    /// LSD loop flushes (inclusive evictions or misalignment collisions).
    pub lsd_flushes: u64,
    /// L1 instruction-cache misses.
    pub l1i_misses: u64,
    /// L1 instruction-cache accesses.
    pub l1i_accesses: u64,
}

impl IterationReport {
    /// An empty report.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total µops delivered from all sources.
    pub fn total_uops(&self) -> u64 {
        self.lsd_uops + self.dsb_uops + self.mite_uops
    }

    /// µops delivered from one source.
    pub fn uops_from(&self, source: UopSource) -> u64 {
        match source {
            UopSource::Lsd => self.lsd_uops,
            UopSource::Dsb => self.dsb_uops,
            UopSource::Mite => self.mite_uops,
        }
    }

    /// Records µop delivery from a source.
    #[inline]
    pub fn add_uops(&mut self, source: UopSource, uops: u64) {
        match source {
            UopSource::Lsd => self.lsd_uops += uops,
            UopSource::Dsb => self.dsb_uops += uops,
            UopSource::Mite => self.mite_uops += uops,
        }
    }

    /// The dominant source of this report, for classifying delivery modes
    /// (used by the Fig. 2 / Fig. 9 histograms). Ties favour the slower
    /// path.
    pub fn dominant_source(&self) -> UopSource {
        if self.mite_uops >= self.dsb_uops && self.mite_uops >= self.lsd_uops {
            if self.mite_uops == 0 {
                UopSource::Lsd
            } else {
                UopSource::Mite
            }
        } else if self.dsb_uops >= self.lsd_uops {
            UopSource::Dsb
        } else {
            UopSource::Lsd
        }
    }

    /// L1I miss rate over this report.
    pub fn l1i_miss_rate(&self) -> f64 {
        if self.l1i_accesses == 0 {
            0.0
        } else {
            self.l1i_misses as f64 / self.l1i_accesses as f64
        }
    }

    /// Scales every additive quantity by `n` — used to extrapolate a
    /// steady-state iteration to a long run (e.g. Fig. 4's 800 M
    /// iterations) without simulating each one.
    pub fn scaled(&self, n: u64) -> IterationReport {
        IterationReport {
            cycles: self.cycles * n as f64,
            lsd_uops: self.lsd_uops * n,
            dsb_uops: self.dsb_uops * n,
            mite_uops: self.mite_uops * n,
            lcp_stall_cycles: self.lcp_stall_cycles * n as f64,
            switch_penalty_cycles: self.switch_penalty_cycles * n as f64,
            crossing_penalty_cycles: self.crossing_penalty_cycles * n as f64,
            dsb_to_mite_switches: self.dsb_to_mite_switches * n,
            dsb_evictions: self.dsb_evictions * n,
            lsd_flushes: self.lsd_flushes * n,
            l1i_misses: self.l1i_misses * n,
            l1i_accesses: self.l1i_accesses * n,
        }
    }
}

/// Finds the smallest period `k ≤ max_period` such that the last `2k`
/// reports of `history` form the same `k`-report cycle twice in a row,
/// i.e. the run has (apparently) entered a steady state of period `k`.
///
/// Period 1 — two identical consecutive reports — is the classic steady
/// state; longer periods capture delivery patterns that oscillate between
/// a few alternating iteration shapes. `Frontend::run_iterations` uses
/// this to collapse the remainder of an 800 M-iteration run (Fig. 4
/// scale) into `O(k)` scaled additions.
///
/// Reports are compared exactly (including `f64` cycle counts), which is
/// meaningful because the simulator is deterministic.
///
/// # Examples
///
/// ```
/// use leaky_frontend::{detect_report_period, IterationReport};
///
/// let a = IterationReport { cycles: 1.0, ..Default::default() };
/// let b = IterationReport { cycles: 2.0, ..Default::default() };
/// assert_eq!(detect_report_period(&[a, a], 8), Some(1));
/// assert_eq!(detect_report_period(&[a, b, a, b], 8), Some(2));
/// assert_eq!(detect_report_period(&[a, b], 8), None);
/// ```
pub fn detect_report_period(history: &[IterationReport], max_period: usize) -> Option<usize> {
    for k in 1..=max_period {
        if history.len() < 2 * k {
            break;
        }
        let tail = &history[history.len() - k..];
        let prev = &history[history.len() - 2 * k..history.len() - k];
        if tail == prev {
            return Some(k);
        }
    }
    None
}

impl Add for IterationReport {
    type Output = IterationReport;

    fn add(mut self, rhs: IterationReport) -> IterationReport {
        self += rhs;
        self
    }
}

impl AddAssign for IterationReport {
    #[inline]
    fn add_assign(&mut self, rhs: IterationReport) {
        self.cycles += rhs.cycles;
        self.lsd_uops += rhs.lsd_uops;
        self.dsb_uops += rhs.dsb_uops;
        self.mite_uops += rhs.mite_uops;
        self.lcp_stall_cycles += rhs.lcp_stall_cycles;
        self.switch_penalty_cycles += rhs.switch_penalty_cycles;
        self.crossing_penalty_cycles += rhs.crossing_penalty_cycles;
        self.dsb_to_mite_switches += rhs.dsb_to_mite_switches;
        self.dsb_evictions += rhs.dsb_evictions;
        self.lsd_flushes += rhs.lsd_flushes;
        self.l1i_misses += rhs.l1i_misses;
        self.l1i_accesses += rhs.l1i_accesses;
    }
}

impl std::iter::Sum for IterationReport {
    fn sum<I: Iterator<Item = IterationReport>>(iter: I) -> Self {
        iter.fold(IterationReport::default(), |a, b| a + b)
    }
}

impl fmt::Display for IterationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.1} cyc | uops LSD {} / DSB {} / MITE {} | LCP {:.1} cyc | {} switches ({:.1} cyc) | {} evictions | {} LSD flushes",
            self.cycles,
            self.lsd_uops,
            self.dsb_uops,
            self.mite_uops,
            self.lcp_stall_cycles,
            self.dsb_to_mite_switches,
            self.switch_penalty_cycles,
            self.dsb_evictions,
            self.lsd_flushes,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reports_are_additive() {
        let mut a = IterationReport::new();
        a.add_uops(UopSource::Dsb, 10);
        a.cycles = 5.0;
        let mut b = IterationReport::new();
        b.add_uops(UopSource::Mite, 3);
        b.cycles = 7.0;
        b.dsb_to_mite_switches = 1;
        let sum = a + b;
        assert_eq!(sum.total_uops(), 13);
        assert_eq!(sum.cycles, 12.0);
        assert_eq!(sum.dsb_to_mite_switches, 1);
    }

    #[test]
    fn sum_over_iterator() {
        let reports = vec![
            IterationReport {
                cycles: 1.0,
                lsd_uops: 2,
                ..Default::default()
            };
            5
        ];
        let total: IterationReport = reports.into_iter().sum();
        assert_eq!(total.cycles, 5.0);
        assert_eq!(total.lsd_uops, 10);
    }

    #[test]
    fn scaled_matches_repeated_add() {
        let r = IterationReport {
            cycles: 2.5,
            mite_uops: 4,
            lcp_stall_cycles: 1.0,
            ..Default::default()
        };
        let s = r.scaled(4);
        let mut acc = IterationReport::new();
        for _ in 0..4 {
            acc += r;
        }
        assert_eq!(s, acc);
    }

    #[test]
    fn dominant_source_classification() {
        let mut r = IterationReport::new();
        r.add_uops(UopSource::Lsd, 40);
        assert_eq!(r.dominant_source(), UopSource::Lsd);
        r.add_uops(UopSource::Dsb, 50);
        assert_eq!(r.dominant_source(), UopSource::Dsb);
        r.add_uops(UopSource::Mite, 50);
        assert_eq!(r.dominant_source(), UopSource::Mite);
        assert_eq!(IterationReport::new().dominant_source(), UopSource::Lsd);
    }

    #[test]
    fn miss_rate_handles_zero_accesses() {
        assert_eq!(IterationReport::new().l1i_miss_rate(), 0.0);
    }

    #[test]
    fn period_detection_prefers_smallest_cycle() {
        let r = |c: f64| IterationReport {
            cycles: c,
            ..Default::default()
        };
        let (a, b, c) = (r(1.0), r(2.0), r(3.0));
        // Too little history.
        assert_eq!(detect_report_period(&[a], 8), None);
        assert_eq!(detect_report_period(&[a, b], 8), None);
        // Period 1 wins even when longer periods also match.
        assert_eq!(detect_report_period(&[b, a, a], 8), Some(1));
        assert_eq!(detect_report_period(&[a, a, a, a], 8), Some(1));
        // Genuine period 2 and 3 cycles.
        assert_eq!(detect_report_period(&[a, b, a, b], 8), Some(2));
        assert_eq!(detect_report_period(&[c, a, b, c, a, b], 8), Some(3));
        // A period above the cap is not detected.
        assert_eq!(detect_report_period(&[c, a, b, c, a, b], 2), None);
        // Transient prefixes don't confuse the tail comparison.
        assert_eq!(detect_report_period(&[c, c, a, b, a, b], 8), Some(2));
        // Near-cycles differing only in one float are rejected.
        let almost = r(2.0 + 1e-12);
        assert_eq!(detect_report_period(&[a, b, a, almost], 8), None);
    }
}

//! Loop Stream Detector qualification (§IV-A, §IV-G).
//!
//! The LSD streams a qualifying loop's µops straight out of the IDQ,
//! disabling the rest of the frontend. Our qualification rule (fitted to
//! every data point in §IV-G; see DESIGN.md) is:
//!
//! 1. total µops ≤ LSD capacity (64; halved under SMT),
//! 2. the loop spans ≤ 8 tracked 32-byte windows, where a window-crossing
//!    (misaligned) block counts for 2,
//! 3. a loop containing *any* misaligned block must span *strictly fewer*
//!    than 8 windows.

use leaky_isa::{BlockChain, FrontendGeometry};

/// Why a loop does or does not qualify for the LSD.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LsdVerdict {
    /// The loop qualifies and will stream from the LSD once warm.
    Qualifies,
    /// Too many µops for the LSD (`> capacity`).
    TooManyUops {
        /// µops in the loop.
        uops: u32,
        /// Effective LSD capacity.
        capacity: u32,
    },
    /// The loop spans too many 32-byte windows.
    TooManyWindows {
        /// Windows spanned (misaligned blocks count twice).
        windows: u32,
        /// Window tracking capacity.
        capacity: u32,
    },
    /// Misaligned blocks collide in the LSD's window tracking (§IV-G).
    MisalignmentCollision,
}

impl LsdVerdict {
    /// Whether the loop qualifies.
    pub fn qualifies(self) -> bool {
        matches!(self, LsdVerdict::Qualifies)
    }
}

/// Evaluates the LSD qualification rule for a loop body.
///
/// `smt_active` halves the µop capacity (the 64-entry LSD is partitioned
/// between threads); window tracking is per-thread and stays at 8. This
/// keeps the paper's MT attacks consistent: a d = 6 receiver (30 µops) still
/// streams from the LSD under SMT (§V-A), while larger d values stop
/// qualifying — one source of the error-rate growth in Fig. 8.
///
/// # Examples
///
/// ```
/// use leaky_frontend::lsd_qualifies;
/// use leaky_isa::{same_set_chain, Alignment, DsbSet, FrontendGeometry};
///
/// let g = FrontendGeometry::skylake();
/// let eight = same_set_chain(0x0041_8000, DsbSet::new(0), 8, Alignment::Aligned);
/// assert!(lsd_qualifies(&eight, &g, false).qualifies());
///
/// let four_mis = same_set_chain(0x0041_8000, DsbSet::new(0), 4, Alignment::Misaligned);
/// assert!(!lsd_qualifies(&four_mis, &g, false).qualifies());
/// ```
pub fn lsd_qualifies(chain: &BlockChain, geom: &FrontendGeometry, smt_active: bool) -> LsdVerdict {
    let div = if smt_active { 2 } else { 1 };
    let uop_cap = (geom.lsd_uops / div) as u32;
    let window_cap = geom.lsd_windows as u32;

    let uops = chain.total_uops();
    if uops > uop_cap {
        return LsdVerdict::TooManyUops {
            uops,
            capacity: uop_cap,
        };
    }
    let windows = chain.window_count() as u32;
    let misaligned = chain.misaligned_count();
    if windows > window_cap {
        return LsdVerdict::TooManyWindows {
            windows,
            capacity: window_cap,
        };
    }
    if misaligned > 0 && windows >= window_cap {
        return LsdVerdict::MisalignmentCollision;
    }
    LsdVerdict::Qualifies
}

#[cfg(test)]
mod tests {
    use super::*;
    use leaky_isa::{same_set_chain, Alignment, DsbSet};

    const BASE: u64 = 0x0041_8000;

    fn geom() -> FrontendGeometry {
        FrontendGeometry::skylake()
    }

    fn aligned(n: usize) -> BlockChain {
        same_set_chain(BASE, DsbSet::new(0), n, Alignment::Aligned)
    }

    fn mixed(a: usize, m: usize) -> BlockChain {
        let al = same_set_chain(BASE, DsbSet::new(0), a, Alignment::Aligned);
        let mi = same_set_chain(BASE + 0x10_0000, DsbSet::new(0), m, Alignment::Misaligned);
        al.concat(mi)
    }

    #[test]
    fn eight_aligned_blocks_qualify() {
        // Fig. 3: 8 × 5 = 40 µops < 64 and 8 windows fit.
        assert!(lsd_qualifies(&aligned(8), &geom(), false).qualifies());
    }

    #[test]
    fn twelve_aligned_blocks_fit_uops_but_not_windows() {
        // §IV-F: "if the chain ... is less than 12, all the blocks should
        // fit in LSD" by µop count (12 × 5 = 60 ≤ 64) — but window tracking
        // caps at 8, so eviction-based attacks use ≤ 8 blocks.
        let v = lsd_qualifies(&aligned(12), &geom(), false);
        assert_eq!(
            v,
            LsdVerdict::TooManyWindows {
                windows: 12,
                capacity: 8
            }
        );
    }

    #[test]
    fn thirteen_blocks_exceed_uop_capacity() {
        let v = lsd_qualifies(&aligned(13), &geom(), false);
        assert_eq!(
            v,
            LsdVerdict::TooManyUops {
                uops: 65,
                capacity: 64
            }
        );
    }

    #[test]
    fn four_misaligned_blocks_collide() {
        // §IV-G: "executing 4 chained misaligned blocks that map to the same
        // DSB set will trigger collisions in LSD".
        let c = same_set_chain(BASE, DsbSet::new(0), 4, Alignment::Misaligned);
        assert_eq!(
            lsd_qualifies(&c, &geom(), false),
            LsdVerdict::MisalignmentCollision
        );
    }

    #[test]
    fn three_misaligned_blocks_still_fit() {
        let c = same_set_chain(BASE, DsbSet::new(0), 3, Alignment::Misaligned);
        assert!(lsd_qualifies(&c, &geom(), false).qualifies());
    }

    #[test]
    fn seven_aligned_plus_one_misaligned_flushes() {
        // §IV-G: "if the 8th instruction mix block is misaligned, LSD will
        // be flushed".
        assert!(!lsd_qualifies(&mixed(7, 1), &geom(), false).qualifies());
    }

    #[test]
    fn paper_section_4g_pair_table() {
        // Every {aligned + misaligned} pair §IV-G lists as causing the
        // LSD→DSB transition must fail qualification...
        for (a, m) in [(5, 2), (6, 2), (3, 3), (4, 3), (5, 3)] {
            assert!(
                !lsd_qualifies(&mixed(a, m), &geom(), false).qualifies(),
                "{a} aligned + {m} misaligned must not qualify"
            );
        }
        // ...while small mixed loops still qualify.
        for (a, m) in [(3, 2), (4, 1), (2, 2), (5, 1)] {
            assert!(
                lsd_qualifies(&mixed(a, m), &geom(), false).qualifies(),
                "{a} aligned + {m} misaligned should qualify"
            );
        }
    }

    #[test]
    fn smt_halves_uop_capacity() {
        // 8 aligned blocks (40 µops) qualify solo but not with SMT active
        // (40 > 32); 6 blocks (30 µops) still qualify under SMT, which the
        // MT eviction channel's d = 6 receiver relies on (§V-A).
        assert!(lsd_qualifies(&aligned(8), &geom(), false).qualifies());
        assert!(!lsd_qualifies(&aligned(8), &geom(), true).qualifies());
        assert!(lsd_qualifies(&aligned(6), &geom(), true).qualifies());
        assert!(lsd_qualifies(&aligned(4), &geom(), true).qualifies());
    }

    #[test]
    fn nop_loop_never_qualifies() {
        // §XI: the 100-nop receiver loop must not fit the LSD.
        use leaky_isa::{Addr, Block};
        let chain = BlockChain::new(vec![Block::nops(Addr::new(0x5000), 100)]);
        assert!(!lsd_qualifies(&chain, &geom(), false).qualifies());
    }
}

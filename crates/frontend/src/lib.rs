//! Processor-frontend simulator: MITE, DSB (micro-op cache), LSD, IDQ path
//! selection, SMT arbitration and per-path performance counters.
//!
//! This crate is the substrate on which every attack in the paper runs. It
//! models the three µop-delivery paths of a Skylake-family frontend
//! (paper §IV, Fig. 1):
//!
//! * **MITE** — legacy fetch + pre-decode + 5-way decode; slow and
//!   power-hungry; shared between hyper-threads; stalls on Length-Changing
//!   Prefixes (§IV-H);
//! * **DSB** — the micro-op cache: 32 sets × 8 ways of 32-byte windows
//!   holding ≤ 6 µops each (§IV-B); competitively shared/partitioned under
//!   SMT;
//! * **LSD** — streams loops of ≤ 64 µops spanning ≤ 8 windows directly from
//!   the IDQ (§IV-A, §IV-G).
//!
//! The structures are **inclusive** (MITE ⊇ DSB ⊇ LSD, §IV): evicting a DSB
//! line flushes any LSD loop that contains it, and redirects delivery back to
//! the MITE — exactly the transition the paper's covert channels modulate.
//!
//! Simulation granularity is the *loop iteration over a block chain*: the
//! unit at which the paper's attacks measure timing. Per-instruction effects
//! (LCP stalls, per-instruction path switches) are modeled inside blocks that
//! contain LCP-prefixed instructions.
//!
//! # Examples
//!
//! ```
//! use leaky_frontend::{Frontend, FrontendConfig, ThreadId, UopSource};
//! use leaky_isa::{same_set_chain, Alignment, DsbSet};
//!
//! let mut fe = Frontend::new(FrontendConfig::default());
//! let chain = same_set_chain(0x0041_8000, DsbSet::new(0), 8, Alignment::Aligned);
//!
//! // First iteration decodes through the MITE and fills the DSB...
//! let cold = fe.run_iteration(ThreadId::T0, &chain);
//! assert!(cold.uops_from(UopSource::Mite) > 0);
//! // ...after the LSD's warm-up streak the whole loop streams from it.
//! for _ in 0..3 {
//!     fe.run_iteration(ThreadId::T0, &chain);
//! }
//! let warm = fe.run_iteration(ThreadId::T0, &chain);
//! assert_eq!(warm.uops_from(UopSource::Lsd), chain.total_uops() as u64);
//! assert!(warm.cycles < cold.cycles);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod costs;
pub mod counters;
pub mod dsb;
pub mod engine;
pub mod lsd;
mod plan;
pub mod reference;

pub use costs::CostModel;
pub use counters::{detect_report_period, IterationReport, UopSource};
pub use dsb::{Dsb, LineId, SmtDsbPolicy};
pub use engine::{Frontend, FrontendConfig, ThreadId};
// Re-exported so frontend consumers can install hooks without naming
// `leaky_trace` themselves (the hook rides on `Frontend`, not the config).
pub use leaky_trace::{TraceHook, TraceMode};
pub use leaky_uarch::UarchProfile;
pub use lsd::{lsd_qualifies, LsdVerdict};
pub use reference::NaiveFrontend;

//! The Decoded Stream Buffer (micro-op cache) model.
//!
//! 32 sets × 8 ways of 32-byte windows, ≤ 6 µops per line (§IV-B). Lines are
//! tagged with their owning hardware thread. Under SMT the paper observes
//! that a solo thread owns the whole DSB, and the second thread becoming
//! active forces evictions of the first thread's µops (§IV-B); the exact
//! sharing discipline is configurable via [`SmtDsbPolicy`] (see DESIGN.md).

use leaky_isa::FrontendGeometry;

/// Identity of one DSB line: owning thread, 32-byte window number, and chunk
/// index (windows holding more than 6 µops need multiple lines, §IV-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LineId {
    /// Owning hardware thread (0 or 1).
    pub thread: u8,
    /// Window number (`addr >> 5`).
    pub window: u64,
    /// Chunk index within the window (0 unless the window exceeds 6 µops).
    pub chunk: u8,
}

/// How the DSB is shared between two active hyper-threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SmtDsbPolicy {
    /// Default model: both threads index the full 32 sets and *compete for
    /// ways* within each set. Reproduces the paper's observation that
    /// receiver ways + sender ways > 8 forces cross-thread evictions
    /// (§V-A), and that a waking thread displaces the other's lines.
    #[default]
    Competitive,
    /// Strict set partitioning: when both threads are active each thread
    /// sees 16 private sets (index folds to `addr[8:5]`); all lines are
    /// flushed on every partition transition. Matches the paper's §IV-B
    /// description most literally; kept for ablation.
    SetPartitioned,
    /// No isolation and no transition effects (insecure baseline for
    /// ablation).
    Shared,
}

/// Result of inserting a line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InsertOutcome {
    /// The line that was displaced, if the set was full.
    pub evicted: Option<LineId>,
}

/// The DSB: per-set MRU-ordered line lists.
#[derive(Debug, Clone)]
pub struct Dsb {
    geom: FrontendGeometry,
    policy: SmtDsbPolicy,
    /// `true` while both threads are active (set by the engine).
    partitioned: bool,
    /// Per physical set: resident lines, MRU first.
    sets: Vec<Vec<LineId>>,
}

impl Dsb {
    /// Creates an empty DSB.
    pub fn new(geom: FrontendGeometry, policy: SmtDsbPolicy) -> Self {
        Dsb {
            sets: vec![Vec::with_capacity(geom.dsb_ways); geom.dsb_sets],
            geom,
            policy,
            partitioned: false,
        }
    }

    /// The sharing policy.
    pub fn policy(&self) -> SmtDsbPolicy {
        self.policy
    }

    /// Whether the DSB is currently in two-thread (partitioned) mode.
    pub fn is_partitioned(&self) -> bool {
        self.partitioned
    }

    /// Switches between solo and two-thread mode. Returns the lines flushed
    /// by the transition (the paper's partition-transition evictions).
    pub fn set_partitioned(&mut self, partitioned: bool) -> Vec<LineId> {
        if self.partitioned == partitioned {
            return Vec::new();
        }
        self.partitioned = partitioned;
        match self.policy {
            // Set partitioning re-indexes every line: flush all.
            SmtDsbPolicy::SetPartitioned => self.flush_all(),
            // Competitive sharing keeps contents; contention does the rest.
            SmtDsbPolicy::Competitive | SmtDsbPolicy::Shared => Vec::new(),
        }
    }

    /// The physical set index a line maps to under the current mode.
    fn set_index(&self, line: LineId) -> usize {
        let full = (line.window % self.geom.dsb_sets as u64) as usize;
        match self.policy {
            SmtDsbPolicy::SetPartitioned if self.partitioned => {
                // Fold to 16 sets per thread: low 4 index bits + thread half.
                let half = self.geom.dsb_sets / 2;
                (full % half) + line.thread as usize * half
            }
            _ => full,
        }
    }

    /// Ways available to one thread in the current mode.
    pub fn effective_ways(&self) -> usize {
        self.geom.dsb_ways
    }

    /// Whether a line is resident (does not disturb recency).
    pub fn resident(&self, line: LineId) -> bool {
        self.sets[self.set_index(line)].contains(&line)
    }

    /// Looks a line up, promoting it to MRU on hit.
    pub fn lookup(&mut self, line: LineId) -> bool {
        let set = self.set_index(line);
        let ways = &mut self.sets[set];
        if let Some(pos) = ways.iter().position(|&l| l == line) {
            let l = ways.remove(pos);
            ways.insert(0, l);
            true
        } else {
            false
        }
    }

    /// Inserts a line (after a MITE fill), evicting the LRU way if needed.
    pub fn insert(&mut self, line: LineId) -> InsertOutcome {
        let ways_limit = self.geom.dsb_ways;
        let set = self.set_index(line);
        let ways = &mut self.sets[set];
        debug_assert!(!ways.contains(&line), "inserting an already-resident line");
        let evicted = if ways.len() >= ways_limit {
            ways.pop()
        } else {
            None
        };
        ways.insert(0, line);
        InsertOutcome { evicted }
    }

    /// Flushes every line owned by one thread; returns them.
    pub fn flush_thread(&mut self, thread: u8) -> Vec<LineId> {
        let mut flushed = Vec::new();
        for set in &mut self.sets {
            set.retain(|l| {
                if l.thread == thread {
                    flushed.push(*l);
                    false
                } else {
                    true
                }
            });
        }
        flushed
    }

    /// Flushes everything; returns the flushed lines.
    pub fn flush_all(&mut self) -> Vec<LineId> {
        let mut flushed = Vec::new();
        for set in &mut self.sets {
            flushed.append(set);
        }
        flushed
    }

    /// Number of resident lines owned by a thread.
    pub fn occupancy(&self, thread: u8) -> usize {
        self.sets
            .iter()
            .map(|s| s.iter().filter(|l| l.thread == thread).count())
            .sum()
    }

    /// Resident lines (MRU first) in the physical set that `line` maps to.
    pub fn set_lines_for(&self, line: LineId) -> &[LineId] {
        &self.sets[self.set_index(line)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(thread: u8, window: u64) -> LineId {
        LineId {
            thread,
            window,
            chunk: 0,
        }
    }

    fn dsb(policy: SmtDsbPolicy) -> Dsb {
        Dsb::new(FrontendGeometry::skylake(), policy)
    }

    #[test]
    fn lookup_after_insert_hits() {
        let mut d = dsb(SmtDsbPolicy::Competitive);
        let l = line(0, 0x20c00);
        assert!(!d.lookup(l));
        d.insert(l);
        assert!(d.lookup(l));
        assert!(d.resident(l));
    }

    #[test]
    fn nine_ways_evict_lru_in_one_set() {
        // §IV-F: chains of 9 same-set blocks exceed the 8 ways.
        let mut d = dsb(SmtDsbPolicy::Competitive);
        // Windows i*32 all map to set 0 (window % 32 == 0).
        let lines: Vec<LineId> = (0..9).map(|i| line(0, i * 32)).collect();
        let mut evicted = None;
        for &l in &lines {
            let out = d.insert(l);
            if out.evicted.is_some() {
                evicted = out.evicted;
            }
        }
        assert_eq!(evicted, Some(lines[0]), "LRU (first inserted) evicted");
        assert!(!d.resident(lines[0]));
        for &l in &lines[1..] {
            assert!(d.resident(l));
        }
    }

    #[test]
    fn eight_ways_fit_without_eviction() {
        let mut d = dsb(SmtDsbPolicy::Competitive);
        for i in 0..8 {
            assert_eq!(d.insert(line(0, i * 32)).evicted, None);
        }
        assert_eq!(d.occupancy(0), 8);
    }

    #[test]
    fn cross_thread_way_competition() {
        // §V-A arithmetic: receiver d=6 ways + sender 3 ways > 8 evicts
        // receiver lines under the competitive policy.
        let mut d = dsb(SmtDsbPolicy::Competitive);
        d.set_partitioned(true);
        for i in 0..6 {
            d.insert(line(0, i * 32)); // receiver
        }
        let mut receiver_evicted = 0;
        for i in 100..103 {
            if let Some(e) = d.insert(line(1, i * 32)).evicted {
                if e.thread == 0 {
                    receiver_evicted += 1;
                }
            }
        }
        assert_eq!(receiver_evicted, 1, "6 + 3 = 9 > 8: exactly one eviction");
    }

    #[test]
    fn set_partition_transition_flushes_everything() {
        let mut d = dsb(SmtDsbPolicy::SetPartitioned);
        for i in 0..4 {
            d.insert(line(0, i * 32));
        }
        let flushed = d.set_partitioned(true);
        assert_eq!(flushed.len(), 4);
        assert_eq!(d.occupancy(0), 0);
        // Transition back also flushes.
        d.insert(line(0, 0));
        assert_eq!(d.set_partitioned(false).len(), 1);
    }

    #[test]
    fn set_partitioned_threads_use_disjoint_sets() {
        let mut d = dsb(SmtDsbPolicy::SetPartitioned);
        d.set_partitioned(true);
        // Same window, different threads: must land in different halves and
        // never compete.
        for i in 0..8 {
            d.insert(line(0, i * 32));
            d.insert(line(1, i * 32));
        }
        assert_eq!(d.occupancy(0), 8);
        assert_eq!(d.occupancy(1), 8);
        // A ninth line from thread 1 evicts thread 1's LRU, not thread 0's.
        let out = d.insert(line(1, 8 * 32));
        assert_eq!(out.evicted.map(|l| l.thread), Some(1));
    }

    #[test]
    fn competitive_transition_keeps_contents() {
        let mut d = dsb(SmtDsbPolicy::Competitive);
        d.insert(line(0, 0));
        assert!(d.set_partitioned(true).is_empty());
        assert!(d.resident(line(0, 0)));
    }

    #[test]
    fn flush_thread_is_selective() {
        let mut d = dsb(SmtDsbPolicy::Competitive);
        d.insert(line(0, 0));
        d.insert(line(1, 32));
        let flushed = d.flush_thread(0);
        assert_eq!(flushed.len(), 1);
        assert_eq!(d.occupancy(0), 0);
        assert_eq!(d.occupancy(1), 1);
    }

    #[test]
    fn chunked_windows_occupy_distinct_ways() {
        let mut d = dsb(SmtDsbPolicy::Competitive);
        let a = LineId {
            thread: 0,
            window: 64,
            chunk: 0,
        };
        let b = LineId {
            thread: 0,
            window: 64,
            chunk: 1,
        };
        d.insert(a);
        d.insert(b);
        assert!(d.resident(a) && d.resident(b));
        assert_eq!(d.set_lines_for(a).len(), 2);
    }
}

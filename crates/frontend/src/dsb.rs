//! The Decoded Stream Buffer (micro-op cache) model.
//!
//! 32 sets × 8 ways of 32-byte windows, ≤ 6 µops per line (§IV-B). Lines are
//! tagged with their owning hardware thread. Under SMT the paper observes
//! that a solo thread owns the whole DSB, and the second thread becoming
//! active forces evictions of the first thread's µops (§IV-B); the exact
//! sharing discipline is configurable via [`SmtDsbPolicy`] (see DESIGN.md).
//!
//! Storage is a single contiguous `sets × ways` buffer of packed line ids
//! with per-set occupancy counters and ring heads — no per-access
//! allocation, no pointer chasing — because this structure sits on the
//! innermost loop of every covert-channel bit the reproduction simulates.
//! See [`Dsb`] for the ring layout.

use leaky_isa::FrontendGeometry;

/// Identity of one DSB line: owning thread, 32-byte window number, and chunk
/// index (windows holding more than 6 µops need multiple lines, §IV-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LineId {
    /// Owning hardware thread (0 or 1).
    pub thread: u8,
    /// Window number (`addr >> 5`).
    pub window: u64,
    /// Chunk index within the window (0 unless the window exceeds 6 µops).
    pub chunk: u8,
}

/// Packed wire format of a [`LineId`]: `window << 9 | thread << 8 | chunk`.
/// One `u64` per line keeps a whole DSB set in a single cache line.
/// Windows are `addr >> 5`, so any address below 2^60 packs losslessly.
#[inline]
pub(crate) fn pack_line(line: LineId) -> u64 {
    debug_assert!(line.window < 1 << 55, "window exceeds packed capacity");
    debug_assert!(line.thread < 2, "thread must be 0 or 1");
    (line.window << 9) | ((line.thread as u64) << 8) | line.chunk as u64
}

/// Inverse of [`pack_line`].
#[inline]
pub(crate) fn unpack_line(packed: u64) -> LineId {
    LineId {
        thread: ((packed >> 8) & 1) as u8,
        window: packed >> 9,
        chunk: (packed & 0xff) as u8,
    }
}

/// How the DSB is shared between two active hyper-threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SmtDsbPolicy {
    /// Default model: both threads index the full 32 sets and *compete for
    /// ways* within each set. Reproduces the paper's observation that
    /// receiver ways + sender ways > 8 forces cross-thread evictions
    /// (§V-A), and that a waking thread displaces the other's lines.
    #[default]
    Competitive,
    /// Strict set partitioning: when both threads are active each thread
    /// sees 16 private sets (index folds to `addr[8:5]`); all lines are
    /// flushed on every partition transition. Matches the paper's §IV-B
    /// description most literally; kept for ablation.
    SetPartitioned,
    /// No isolation and no transition effects (insecure baseline for
    /// ablation).
    Shared,
}

/// Result of inserting a line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InsertOutcome {
    /// The line that was displaced, if the set was full.
    pub evicted: Option<LineId>,
}

/// The DSB: a flat fixed-capacity buffer of packed lines.
///
/// Each set is a *ring*: slot `heads[s] + i (mod ways)` of the set's
/// segment holds the `i`-th line in MRU-first order. The ring makes the
/// two patterns the paper's attacks hammer O(1) instead of O(ways)
/// memmoves — promoting the LRU tail (a warm loop walking its lines
/// cyclically) and evict-plus-fill (a thrashing set) are both just a head
/// decrement and one slot write.
#[derive(Debug, Clone)]
pub struct Dsb {
    geom: FrontendGeometry,
    policy: SmtDsbPolicy,
    /// `true` while both threads are active (set by the engine).
    partitioned: bool,
    /// `sets × ways` packed line slots (ring per set, see type docs).
    lines: Box<[u64]>,
    /// Per-set occupancy.
    lens: Box<[u8]>,
    /// Per-set ring head: physical slot of the MRU line.
    heads: Box<[u8]>,
    /// `sets - 1` when the set count is a power of two (the Table I
    /// geometry), letting the per-access index be an AND instead of a
    /// 64-bit division; `None` falls back to `%` for odd ablations.
    index_mask: Option<u64>,
}

impl Dsb {
    /// Creates an empty DSB.
    pub fn new(geom: FrontendGeometry, policy: SmtDsbPolicy) -> Self {
        assert!(geom.dsb_ways <= u8::MAX as usize, "ways must fit a u8");
        // The engine's LSD-lock set masks are one u64 bit per set; a wider
        // ablation geometry would silently wrap the shift in release
        // builds, so refuse it loudly here (both engines construct a DSB).
        assert!(geom.dsb_sets <= 64, "set masks support at most 64 DSB sets");
        Dsb {
            lines: vec![0; geom.dsb_sets * geom.dsb_ways].into_boxed_slice(),
            lens: vec![0; geom.dsb_sets].into_boxed_slice(),
            heads: vec![0; geom.dsb_sets].into_boxed_slice(),
            index_mask: geom
                .dsb_sets
                .is_power_of_two()
                .then_some(geom.dsb_sets as u64 - 1),
            geom,
            policy,
            partitioned: false,
        }
    }

    /// Physical slot (within a set's segment) of logical MRU position `i`.
    #[inline]
    fn phys(head: usize, i: usize, ways: usize) -> usize {
        let p = head + i;
        if p >= ways {
            p - ways
        } else {
            p
        }
    }

    /// The sharing policy.
    pub fn policy(&self) -> SmtDsbPolicy {
        self.policy
    }

    /// Whether the DSB is currently in two-thread (partitioned) mode.
    pub fn is_partitioned(&self) -> bool {
        self.partitioned
    }

    /// Switches between solo and two-thread mode. Returns the lines flushed
    /// by the transition (the paper's partition-transition evictions).
    pub fn set_partitioned(&mut self, partitioned: bool) -> Vec<LineId> {
        if self.partitioned == partitioned {
            return Vec::new();
        }
        self.partitioned = partitioned;
        match self.policy {
            // Set partitioning re-indexes every line: flush all.
            SmtDsbPolicy::SetPartitioned => self.flush_all(),
            // Competitive sharing keeps contents; contention does the rest.
            SmtDsbPolicy::Competitive | SmtDsbPolicy::Shared => Vec::new(),
        }
    }

    /// The physical set index a line maps to under the current mode.
    #[inline]
    fn set_index(&self, line: LineId) -> usize {
        let full = match self.index_mask {
            Some(mask) => (line.window & mask) as usize,
            None => (line.window % self.geom.dsb_sets as u64) as usize,
        };
        match self.policy {
            SmtDsbPolicy::SetPartitioned if self.partitioned => {
                // Fold to 16 sets per thread: low 4 index bits + thread half.
                let half = self.geom.dsb_sets / 2;
                (full % half) + line.thread as usize * half
            }
            _ => full,
        }
    }

    /// Ways available to one thread in the current mode.
    pub fn effective_ways(&self) -> usize {
        self.geom.dsb_ways
    }

    /// Logical MRU position of `packed` in a set, if resident. Probes the
    /// MRU slot first, then scans from the LRU end: a loop re-touching the
    /// same window hits at position 0, and a warm loop walking its lines
    /// cyclically hits at the tail — both in one or two compares.
    #[inline]
    fn find(
        &self,
        base: usize,
        head: usize,
        len: usize,
        ways: usize,
        packed: u64,
    ) -> Option<usize> {
        if len == 0 {
            return None;
        }
        if self.lines[base + head] == packed {
            return Some(0);
        }
        (1..len)
            .rev()
            .find(|&i| self.lines[base + Self::phys(head, i, ways)] == packed)
    }

    /// Makes the line at logical position `pos` the MRU of its set.
    #[inline]
    fn promote(&mut self, set: usize, base: usize, pos: usize, packed: u64) {
        if pos == 0 {
            return;
        }
        let ways = self.geom.dsb_ways;
        let head = self.heads[set] as usize;
        let len = self.lens[set] as usize;
        if pos == len - 1 {
            // Tail promotion: the ring rotates wholesale — move the head
            // back one slot and park the tail's value there (a no-op write
            // when the set is full, because head-1 *is* the tail's slot).
            let new_head = Self::phys(head, ways - 1, ways);
            self.lines[base + new_head] = packed;
            self.heads[set] = new_head as u8;
            return;
        }
        // Middle promotion: shift logical [0, pos) down one, then place
        // the hit line at the front.
        for i in (1..=pos).rev() {
            self.lines[base + Self::phys(head, i, ways)] =
                self.lines[base + Self::phys(head, i - 1, ways)];
        }
        self.lines[base + head] = packed;
    }

    /// Fills a (verified-absent) line as the new MRU, evicting the LRU
    /// when the set is full.
    #[inline]
    fn fill(&mut self, set: usize, base: usize, packed: u64) -> Option<LineId> {
        let ways = self.geom.dsb_ways;
        let head = self.heads[set] as usize;
        let len = self.lens[set] as usize;
        let new_head = Self::phys(head, ways - 1, ways);
        let evicted = if len >= ways {
            // The slot before the head is the LRU tail: overwrite in place.
            Some(unpack_line(self.lines[base + new_head]))
        } else {
            self.lens[set] = (len + 1) as u8;
            None
        };
        self.lines[base + new_head] = packed;
        self.heads[set] = new_head as u8;
        evicted
    }

    /// Whether a line is resident (does not disturb recency).
    #[inline]
    pub fn resident(&self, line: LineId) -> bool {
        let ways = self.geom.dsb_ways;
        let set = self.set_index(line);
        self.find(
            set * ways,
            self.heads[set] as usize,
            self.lens[set] as usize,
            ways,
            pack_line(line),
        )
        .is_some()
    }

    /// Looks a line up, promoting it to MRU on hit.
    #[inline]
    pub fn lookup(&mut self, line: LineId) -> bool {
        let ways = self.geom.dsb_ways;
        let set = self.set_index(line);
        let base = set * ways;
        let packed = pack_line(line);
        match self.find(
            base,
            self.heads[set] as usize,
            self.lens[set] as usize,
            ways,
            packed,
        ) {
            Some(pos) => {
                self.promote(set, base, pos, packed);
                true
            }
            None => false,
        }
    }

    /// Looks a line up and, on a miss, fills it in the same pass (the
    /// frontend's per-line delivery step): returns whether the line hit
    /// and, on a miss into a full set, the LRU line it displaced.
    /// Equivalent to `lookup` followed by `insert` on miss, with a single
    /// scan of the set.
    #[inline]
    pub fn access(&mut self, line: LineId) -> (bool, Option<LineId>) {
        let ways = self.geom.dsb_ways;
        let set = self.set_index(line);
        let base = set * ways;
        let packed = pack_line(line);
        match self.find(
            base,
            self.heads[set] as usize,
            self.lens[set] as usize,
            ways,
            packed,
        ) {
            Some(pos) => {
                self.promote(set, base, pos, packed);
                (true, None)
            }
            None => (false, self.fill(set, base, packed)),
        }
    }

    /// Inserts a line (after a MITE fill), evicting the LRU way if needed.
    #[inline]
    pub fn insert(&mut self, line: LineId) -> InsertOutcome {
        let ways = self.geom.dsb_ways;
        let set = self.set_index(line);
        let base = set * ways;
        let packed = pack_line(line);
        debug_assert!(
            self.find(
                base,
                self.heads[set] as usize,
                self.lens[set] as usize,
                ways,
                packed
            )
            .is_none(),
            "inserting an already-resident line"
        );
        InsertOutcome {
            evicted: self.fill(set, base, packed),
        }
    }

    /// Flushes every line owned by one thread; returns them.
    pub fn flush_thread(&mut self, thread: u8) -> Vec<LineId> {
        let ways = self.geom.dsb_ways;
        let thread_bit = (thread as u64) << 8;
        let mut flushed = Vec::new();
        let mut kept_buf = vec![0u64; ways];
        for set in 0..self.lens.len() {
            let base = set * ways;
            let head = self.heads[set] as usize;
            let len = self.lens[set] as usize;
            let mut kept = 0usize;
            for i in 0..len {
                let packed = self.lines[base + Self::phys(head, i, ways)];
                if packed & (1 << 8) == thread_bit {
                    flushed.push(unpack_line(packed));
                } else {
                    kept_buf[kept] = packed;
                    kept += 1;
                }
            }
            // Re-lay the survivors from slot 0, preserving MRU order.
            self.lines[base..base + kept].copy_from_slice(&kept_buf[..kept]);
            self.heads[set] = 0;
            self.lens[set] = kept as u8;
        }
        flushed
    }

    /// Flushes everything; returns the flushed lines.
    pub fn flush_all(&mut self) -> Vec<LineId> {
        let ways = self.geom.dsb_ways;
        let mut flushed = Vec::new();
        for set in 0..self.lens.len() {
            let base = set * ways;
            let head = self.heads[set] as usize;
            let len = std::mem::take(&mut self.lens[set]) as usize;
            flushed.extend(
                (0..len).map(|i| unpack_line(self.lines[base + Self::phys(head, i, ways)])),
            );
            self.heads[set] = 0;
        }
        flushed
    }

    /// Number of resident lines owned by a thread.
    pub fn occupancy(&self, thread: u8) -> usize {
        let ways = self.geom.dsb_ways;
        let thread_bit = (thread as u64) << 8;
        (0..self.lens.len())
            .map(|set| {
                let base = set * ways;
                let head = self.heads[set] as usize;
                let len = self.lens[set] as usize;
                (0..len)
                    .filter(|&i| {
                        self.lines[base + Self::phys(head, i, ways)] & (1 << 8) == thread_bit
                    })
                    .count()
            })
            .sum()
    }

    /// Resident lines (MRU first) in the physical set that `line` maps to.
    pub fn set_lines_for(&self, line: LineId) -> impl Iterator<Item = LineId> + '_ {
        let ways = self.geom.dsb_ways;
        let set = self.set_index(line);
        let base = set * ways;
        let head = self.heads[set] as usize;
        let len = self.lens[set] as usize;
        (0..len).map(move |i| unpack_line(self.lines[base + Self::phys(head, i, ways)]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(thread: u8, window: u64) -> LineId {
        LineId {
            thread,
            window,
            chunk: 0,
        }
    }

    fn dsb(policy: SmtDsbPolicy) -> Dsb {
        Dsb::new(FrontendGeometry::skylake(), policy)
    }

    #[test]
    fn pack_roundtrips() {
        for l in [
            line(0, 0),
            line(1, 0x20c00),
            LineId {
                thread: 1,
                window: (1 << 55) - 1,
                chunk: 255,
            },
        ] {
            assert_eq!(unpack_line(pack_line(l)), l);
        }
    }

    #[test]
    fn lookup_after_insert_hits() {
        let mut d = dsb(SmtDsbPolicy::Competitive);
        let l = line(0, 0x20c00);
        assert!(!d.lookup(l));
        d.insert(l);
        assert!(d.lookup(l));
        assert!(d.resident(l));
    }

    #[test]
    fn nine_ways_evict_lru_in_one_set() {
        // §IV-F: chains of 9 same-set blocks exceed the 8 ways.
        let mut d = dsb(SmtDsbPolicy::Competitive);
        // Windows i*32 all map to set 0 (window % 32 == 0).
        let lines: Vec<LineId> = (0..9).map(|i| line(0, i * 32)).collect();
        let mut evicted = None;
        for &l in &lines {
            let out = d.insert(l);
            if out.evicted.is_some() {
                evicted = out.evicted;
            }
        }
        assert_eq!(evicted, Some(lines[0]), "LRU (first inserted) evicted");
        assert!(!d.resident(lines[0]));
        for &l in &lines[1..] {
            assert!(d.resident(l));
        }
    }

    #[test]
    fn eight_ways_fit_without_eviction() {
        let mut d = dsb(SmtDsbPolicy::Competitive);
        for i in 0..8 {
            assert_eq!(d.insert(line(0, i * 32)).evicted, None);
        }
        assert_eq!(d.occupancy(0), 8);
    }

    #[test]
    fn lookup_promotes_to_mru() {
        let mut d = dsb(SmtDsbPolicy::Competitive);
        for i in 0..8 {
            d.insert(line(0, i * 32));
        }
        // Re-touch the LRU line (first inserted); the next insert must then
        // evict the second-oldest instead.
        assert!(d.lookup(line(0, 0)));
        let out = d.insert(line(0, 8 * 32));
        assert_eq!(out.evicted, Some(line(0, 32)));
        assert!(d.resident(line(0, 0)));
    }

    #[test]
    fn cross_thread_way_competition() {
        // §V-A arithmetic: receiver d=6 ways + sender 3 ways > 8 evicts
        // receiver lines under the competitive policy.
        let mut d = dsb(SmtDsbPolicy::Competitive);
        d.set_partitioned(true);
        for i in 0..6 {
            d.insert(line(0, i * 32)); // receiver
        }
        let mut receiver_evicted = 0;
        for i in 100..103 {
            if let Some(e) = d.insert(line(1, i * 32)).evicted {
                if e.thread == 0 {
                    receiver_evicted += 1;
                }
            }
        }
        assert_eq!(receiver_evicted, 1, "6 + 3 = 9 > 8: exactly one eviction");
    }

    #[test]
    fn set_partition_transition_flushes_everything() {
        let mut d = dsb(SmtDsbPolicy::SetPartitioned);
        for i in 0..4 {
            d.insert(line(0, i * 32));
        }
        let flushed = d.set_partitioned(true);
        assert_eq!(flushed.len(), 4);
        assert_eq!(d.occupancy(0), 0);
        // Transition back also flushes.
        d.insert(line(0, 0));
        assert_eq!(d.set_partitioned(false).len(), 1);
    }

    #[test]
    fn set_partitioned_threads_use_disjoint_sets() {
        let mut d = dsb(SmtDsbPolicy::SetPartitioned);
        d.set_partitioned(true);
        // Same window, different threads: must land in different halves and
        // never compete.
        for i in 0..8 {
            d.insert(line(0, i * 32));
            d.insert(line(1, i * 32));
        }
        assert_eq!(d.occupancy(0), 8);
        assert_eq!(d.occupancy(1), 8);
        // A ninth line from thread 1 evicts thread 1's LRU, not thread 0's.
        let out = d.insert(line(1, 8 * 32));
        assert_eq!(out.evicted.map(|l| l.thread), Some(1));
    }

    #[test]
    fn competitive_transition_keeps_contents() {
        let mut d = dsb(SmtDsbPolicy::Competitive);
        d.insert(line(0, 0));
        assert!(d.set_partitioned(true).is_empty());
        assert!(d.resident(line(0, 0)));
    }

    #[test]
    fn flush_thread_is_selective() {
        let mut d = dsb(SmtDsbPolicy::Competitive);
        d.insert(line(0, 0));
        d.insert(line(1, 32));
        let flushed = d.flush_thread(0);
        assert_eq!(flushed.len(), 1);
        assert_eq!(d.occupancy(0), 0);
        assert_eq!(d.occupancy(1), 1);
    }

    #[test]
    fn flush_thread_preserves_survivor_recency() {
        let mut d = dsb(SmtDsbPolicy::Competitive);
        // Interleave two threads in one set, then flush thread 0: thread
        // 1's lines must keep their MRU-first relative order.
        d.insert(line(1, 0));
        d.insert(line(0, 32));
        d.insert(line(1, 2 * 32));
        d.insert(line(0, 3 * 32));
        d.insert(line(1, 4 * 32));
        d.flush_thread(0);
        let order: Vec<u64> = d.set_lines_for(line(1, 0)).map(|l| l.window).collect();
        assert_eq!(order, vec![4 * 32, 2 * 32, 0]);
    }

    #[test]
    fn chunked_windows_occupy_distinct_ways() {
        let mut d = dsb(SmtDsbPolicy::Competitive);
        let a = LineId {
            thread: 0,
            window: 64,
            chunk: 0,
        };
        let b = LineId {
            thread: 0,
            window: 64,
            chunk: 1,
        };
        d.insert(a);
        d.insert(b);
        assert!(d.resident(a) && d.resident(b));
        assert_eq!(d.set_lines_for(a).count(), 2);
    }
}

//! Memoized per-chain delivery plans.
//!
//! A [`DeliveryPlan`] is everything `Frontend::run_iteration` needs to
//! know about a [`BlockChain`] that does **not** depend on mutable
//! frontend state: the flat list of DSB lines each block occupies (in
//! delivery order), per-instruction decode footprints for LCP blocks,
//! L1I cache-line footprints, window-crossing head windows, the LSD
//! qualification verdicts, and the sorted lock-membership array. Plans
//! are built once per `(chain, frontend)` pair and cached MRU-first in a
//! small [`PlanCache`], so the per-iteration hot path walks precomputed
//! flat slices instead of re-deriving windows, chunks and hashes — and
//! performs zero heap allocations.

use std::rc::Rc;

use leaky_isa::{BlockChain, FrontendGeometry};

use crate::lsd::lsd_qualifies;

/// One DSB line in delivery order (thread id is bound at execution time).
#[derive(Debug, Clone, Copy)]
pub(crate) struct PlanLine {
    /// Window number (`addr >> 5`).
    pub window: u64,
    /// Chunk index within the window.
    pub chunk: u8,
    /// µops delivered from this line.
    pub uops: u32,
}

/// One instruction of an LCP-bearing block (instruction-granular path).
#[derive(Debug, Clone, Copy)]
pub(crate) struct PlanInstr {
    /// Window of the instruction's start address.
    pub window: u64,
    /// µop count.
    pub uops: u32,
    /// Whether the instruction carries a length-changing prefix.
    pub has_lcp: bool,
}

/// Per-block slice boundaries into the plan's flat arrays.
#[derive(Debug, Clone, Copy)]
pub(crate) struct PlanBlock {
    /// `lines[lines_start..lines_end]` backs this block.
    pub lines_start: u32,
    /// Exclusive end of the block's line range.
    pub lines_end: u32,
    /// `cache_lines[cache_start..cache_end]` is the L1I footprint.
    pub cache_start: u32,
    /// Exclusive end of the block's cache-line range.
    pub cache_end: u32,
    /// `instrs[instr_start..instr_end]` (empty unless `has_lcp`).
    pub instr_start: u32,
    /// Exclusive end of the block's instruction range.
    pub instr_end: u32,
    /// Window of the block's base address (crossing bookkeeping).
    pub head_window: u64,
    /// Whether the block straddles two windows (misaligned).
    pub crossing: bool,
    /// Whether the block contains LCP-prefixed instructions.
    pub has_lcp: bool,
}

/// The immutable, precomputed delivery recipe for one chain under one
/// frontend geometry.
#[derive(Debug)]
pub(crate) struct DeliveryPlan {
    /// The chain's identity key ([`BlockChain::key`]).
    pub key: u64,
    /// The profile key of the configuration this plan was built under
    /// ([`crate::FrontendConfig::profile_key`]). Cache lookups match on
    /// `(key, config_key)`, so reconfiguring a frontend's geometry or
    /// cost model can never resurrect a stale plan.
    pub config_key: u64,
    /// Total µops per iteration.
    pub total_uops: u32,
    /// Per-block ranges and flags, in execution order.
    pub blocks: Vec<PlanBlock>,
    /// All DSB lines, flat, in delivery order.
    pub lines: Vec<PlanLine>,
    /// All L1I cache lines, flat, in fetch order.
    pub cache_lines: Vec<u64>,
    /// Instruction footprints of LCP-bearing blocks, flat.
    pub instrs: Vec<PlanInstr>,
    /// Head windows of misaligned blocks, in execution order (the
    /// streaming path's sibling-crossing walk, §IV-G).
    pub crossing_head_windows: Vec<u64>,
    /// Sorted, deduplicated `(window << 8) | chunk` members for LSD lock
    /// bookkeeping (binary-searched on every eviction).
    pub lock_lines: Vec<u64>,
    /// Bitmask of DSB sets the chain's windows map to (one bit per set;
    /// wide enough for ablation geometries of up to 64 sets).
    pub set_mask: u64,
    /// Whether any block carries an LCP (such chains never lock the LSD).
    pub has_lcp: bool,
    /// LSD qualification verdict, indexed by `[solo, smt]`.
    pub lsd_fits: [bool; 2],
}

/// Packs a lock-membership entry the way [`DeliveryPlan::lock_lines`]
/// stores it.
pub(crate) fn pack_lock_member(window: u64, chunk: u8) -> u64 {
    (window << 8) | chunk as u64
}

impl DeliveryPlan {
    /// Precomputes the delivery recipe for `chain` under `geom`,
    /// stamping it with the owning configuration's `config_key`.
    ///
    /// # Panics
    ///
    /// Panics if the geometry's µops-per-line is zero
    /// (`Block::line_slots_for`).
    pub fn build(chain: &BlockChain, geom: &FrontendGeometry, config_key: u64) -> DeliveryPlan {
        let line_uops = geom.dsb_line_uops as u32;
        let sets = geom.dsb_sets as u64;
        let mut plan = DeliveryPlan {
            key: chain.key(),
            config_key,
            total_uops: chain.total_uops(),
            blocks: Vec::with_capacity(chain.len()),
            lines: Vec::new(),
            cache_lines: Vec::new(),
            instrs: Vec::new(),
            crossing_head_windows: Vec::new(),
            lock_lines: Vec::new(),
            set_mask: 0,
            has_lcp: false,
            lsd_fits: [
                lsd_qualifies(chain, geom, false).qualifies(),
                lsd_qualifies(chain, geom, true).qualifies(),
            ],
        };
        for block in chain.blocks() {
            let lines_start = plan.lines.len() as u32;
            // `line_slots_for` reuses the block's precomputed slots only
            // when the active geometry matches the capacity they were
            // derived for (the block records it), so a perturbed geometry
            // can never pick up cached Skylake splits.
            plan.lines
                .extend(block.line_slots_for(line_uops).iter().map(|s| PlanLine {
                    window: s.window,
                    chunk: s.chunk,
                    uops: s.uops,
                }));
            let cache_start = plan.cache_lines.len() as u32;
            plan.cache_lines.extend_from_slice(block.cache_lines());
            let instr_start = plan.instrs.len() as u32;
            let has_lcp = block.lcp_count() > 0;
            if has_lcp {
                plan.has_lcp = true;
                plan.instrs
                    .extend(block.placed_instructions().map(|(addr, instr)| PlanInstr {
                        window: addr.window(),
                        uops: instr.uops() as u32,
                        has_lcp: instr.has_lcp(),
                    }));
            }
            let head_window = block.base().window();
            let crossing = !block.is_aligned();
            if crossing {
                plan.crossing_head_windows.push(head_window);
            }
            for line in &plan.lines[lines_start as usize..] {
                plan.set_mask |= 1u64 << (line.window % sets);
            }
            plan.blocks.push(PlanBlock {
                lines_start,
                lines_end: plan.lines.len() as u32,
                cache_start,
                cache_end: plan.cache_lines.len() as u32,
                instr_start,
                instr_end: plan.instrs.len() as u32,
                head_window,
                crossing,
                has_lcp,
            });
        }
        plan.lock_lines = plan
            .lines
            .iter()
            .map(|l| pack_lock_member(l.window, l.chunk))
            .collect();
        plan.lock_lines.sort_unstable();
        plan.lock_lines.dedup();
        plan
    }
}

/// Small MRU cache of delivery plans, keyed by *(chain identity,
/// configuration profile key)*.
///
/// Capacity covers every chain a channel juggles at once (receiver,
/// sender 1/0 encodings, decoys) with ample slack. The profile-key half
/// of the cache key is what makes [`crate::Frontend::reconfigure`] safe:
/// plans built under the old geometry or cost model simply stop
/// matching, so a reconfigured frontend rebuilds rather than reusing
/// stale splits. Hits cost one equality probe on the MRU slot.
#[derive(Debug, Clone, Default)]
pub(crate) struct PlanCache {
    plans: Vec<Rc<DeliveryPlan>>,
}

/// Upper bound on retained plans per frontend.
const PLAN_CACHE_CAPACITY: usize = 32;

impl PlanCache {
    /// Returns the plan for `chain` under the configuration identified by
    /// `config_key`, building and caching it on first use.
    ///
    /// # Panics
    ///
    /// Panics if the geometry's µops-per-line is zero
    /// (`Block::line_slots_for`).
    pub fn get_or_build(
        &mut self,
        chain: &BlockChain,
        geom: &FrontendGeometry,
        config_key: u64,
    ) -> Rc<DeliveryPlan> {
        let key = chain.key();
        if let Some(front) = self.plans.first() {
            if front.key == key && front.config_key == config_key {
                return Rc::clone(front);
            }
        }
        if let Some(pos) = self
            .plans
            .iter()
            .position(|p| p.key == key && p.config_key == config_key)
        {
            self.plans[..=pos].rotate_right(1);
            return Rc::clone(&self.plans[0]);
        }
        let plan = Rc::new(DeliveryPlan::build(chain, geom, config_key));
        self.plans.insert(0, Rc::clone(&plan));
        self.plans.truncate(PLAN_CACHE_CAPACITY);
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use leaky_isa::{same_set_chain, Alignment, DsbSet};

    const BASE: u64 = 0x0041_8000;

    #[test]
    fn plan_matches_chain_shape() {
        let geom = FrontendGeometry::skylake();
        let chain = same_set_chain(BASE, DsbSet::new(0), 8, Alignment::Aligned);
        let plan = DeliveryPlan::build(&chain, &geom, 7);
        assert_eq!(plan.key, chain.key());
        assert_eq!(plan.config_key, 7);
        assert_eq!(plan.total_uops, 40);
        assert_eq!(plan.blocks.len(), 8);
        assert_eq!(plan.lines.len(), chain.dsb_lines(&geom));
        assert_eq!(plan.lock_lines.len(), 8);
        assert!(plan.lock_lines.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(plan.set_mask, 1 << 0);
        assert!(!plan.has_lcp);
        assert!(plan.crossing_head_windows.is_empty());
        assert_eq!(plan.lsd_fits, [true, false]); // 40 µops > 32 under SMT
    }

    #[test]
    fn misaligned_plan_tracks_crossings() {
        let geom = FrontendGeometry::skylake();
        let chain = same_set_chain(BASE, DsbSet::new(3), 4, Alignment::Misaligned);
        let plan = DeliveryPlan::build(&chain, &geom, 0);
        assert_eq!(plan.crossing_head_windows.len(), 4);
        assert!(plan.blocks.iter().all(|b| b.crossing));
        // Two windows per block: head set 3 and the spill into set 4.
        assert_eq!(plan.lines.len(), 8);
        assert_eq!(plan.set_mask, (1 << 3) | (1 << 4));
        assert_eq!(plan.lsd_fits, [false, false]); // §IV-G collision
    }

    #[test]
    fn lcp_plan_carries_instruction_footprints() {
        use leaky_isa::{Addr, Block, LcpPattern};
        let geom = FrontendGeometry::skylake();
        let chain = BlockChain::new(vec![Block::lcp_adds(
            Addr::new(0x10_0000),
            LcpPattern::Mixed,
            16,
        )]);
        let plan = DeliveryPlan::build(&chain, &geom, 0);
        assert!(plan.has_lcp);
        assert_eq!(plan.instrs.len(), 33);
        assert_eq!(plan.instrs.iter().filter(|i| i.has_lcp).count(), 16);
        let blk = plan.blocks[0];
        assert_eq!((blk.instr_start, blk.instr_end), (0, 33));
    }

    #[test]
    fn cache_is_mru_and_bounded() {
        let geom = FrontendGeometry::skylake();
        let mut cache = PlanCache::default();
        let chains: Vec<BlockChain> = (0..40)
            .map(|i| {
                same_set_chain(
                    BASE + (i as u64) * 0x10_0000,
                    DsbSet::new(0),
                    2,
                    Alignment::Aligned,
                )
            })
            .collect();
        for c in &chains {
            let p = cache.get_or_build(c, &geom, 1);
            assert_eq!(p.key, c.key());
        }
        assert!(cache.plans.len() <= PLAN_CACHE_CAPACITY);
        // Re-fetch returns the identical (shared) plan, promoted to MRU.
        let again = cache.get_or_build(chains.last().unwrap(), &geom, 1);
        assert_eq!(Rc::strong_count(&again), 2); // the cache slot + `again`
        assert_eq!(cache.plans[0].key, chains.last().unwrap().key());
        // Evicted early entries rebuild rather than error.
        let rebuilt = cache.get_or_build(&chains[0], &geom, 1);
        assert_eq!(rebuilt.key, chains[0].key());
    }

    #[test]
    fn cache_never_crosses_profile_keys() {
        // The satellite bugfix: the same chain under two configurations
        // (e.g. before/after a geometry reconfigure) must get two distinct
        // plans, and re-fetching under either key must return that key's
        // plan — never the other's.
        let sky = FrontendGeometry::skylake();
        let wide = FrontendGeometry {
            dsb_line_uops: 8,
            ..sky
        };
        // A 31-nop block: one 32-µop window → 6 chunks at 6 µops/line
        // but only 4 chunks at 8 µops/line.
        let chain = BlockChain::new(vec![leaky_isa::Block::nops(
            leaky_isa::Addr::new(0x3000),
            31,
        )]);
        let mut cache = PlanCache::default();
        let a = cache.get_or_build(&chain, &sky, 10);
        let b = cache.get_or_build(&chain, &wide, 20);
        assert_eq!(a.key, b.key, "same chain");
        assert_ne!(a.lines.len(), b.lines.len(), "splits must differ");
        let a2 = cache.get_or_build(&chain, &sky, 10);
        assert_eq!(a2.lines.len(), a.lines.len());
        assert_eq!(a2.config_key, 10);
        let b2 = cache.get_or_build(&chain, &wide, 20);
        assert_eq!(b2.lines.len(), b.lines.len());
        assert_eq!(b2.config_key, 20);
    }
}

//! The frontend engine: path selection, inclusive eviction handling, SMT
//! arbitration and per-iteration cycle accounting.
//!
//! The per-iteration hot path is zero-allocation: chain identity comes
//! from the precomputed [`BlockChain::key`], delivery walks the flat
//! slices of a memoized `DeliveryPlan` (the private `plan` module), the
//! DSB is one
//! contiguous buffer, and LSD lock bookkeeping lives in inline sorted
//! arrays. The retained [`crate::reference::NaiveFrontend`] oracle plus
//! the differential property tests prove the reports are bit-identical
//! to the naive implementation.

use leaky_cache::{CacheConfig, SetAssocCache};
use leaky_isa::{BlockChain, FrontendGeometry};
use leaky_trace::{Source, TraceEvent, TraceHook, UnlockReason};
use leaky_uarch::UarchProfile;

use crate::costs::CostModel;
use crate::counters::{detect_report_period, IterationReport, UopSource};
use crate::dsb::{Dsb, LineId, SmtDsbPolicy};
use crate::plan::{pack_lock_member, DeliveryPlan, PlanBlock, PlanCache};

/// One of the two hardware threads sharing the physical core.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ThreadId {
    /// Hardware thread 0.
    T0,
    /// Hardware thread 1.
    T1,
}

impl ThreadId {
    /// Array index of this thread.
    pub const fn index(self) -> usize {
        match self {
            ThreadId::T0 => 0,
            ThreadId::T1 => 1,
        }
    }

    /// The sibling hardware thread.
    pub const fn other(self) -> ThreadId {
        match self {
            ThreadId::T0 => ThreadId::T1,
            ThreadId::T1 => ThreadId::T0,
        }
    }
}

impl std::fmt::Display for ThreadId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "HT{}", self.index())
    }
}

/// Static configuration of a frontend instance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FrontendConfig {
    /// Structure geometry (Table I).
    pub geometry: FrontendGeometry,
    /// Cycle-cost calibration.
    pub costs: CostModel,
    /// Whether the LSD exists and is enabled. Microcode patch2 disables it
    /// (§X); the E-2174G/E-2286G machines ship with it disabled (Table I).
    pub lsd_enabled: bool,
    /// SMT sharing discipline for the DSB.
    pub dsb_policy: SmtDsbPolicy,
    /// Under the competitive policy, whether a partition *transition*
    /// additionally flushes the previously-solo thread's DSB lines
    /// (§IV-B's "forces DSB evictions ... to occur").
    pub flush_on_partition: bool,
    /// Consecutive clean iterations of the same loop required before the
    /// LSD locks it. Real loop-stream detection engages only after the
    /// loop has repeated identically several times; this also means a loop
    /// interrupted every iteration (e.g. by an interleaved encode phase)
    /// never streams from the LSD.
    pub lsd_warmup_iterations: u32,
}

impl FrontendConfig {
    /// Builds a configuration from a microarchitecture profile: geometry,
    /// cost model and LSD availability come from the profile, SMT policy
    /// and warm-up from the defaults. The `skylake` profile reproduces
    /// [`FrontendConfig::default`] exactly.
    pub fn from_profile(profile: &UarchProfile) -> Self {
        FrontendConfig {
            geometry: profile.geometry,
            costs: profile.costs,
            lsd_enabled: profile.lsd_enabled,
            ..FrontendConfig::default()
        }
    }

    /// Content hash over every configuration field — the *profile key*
    /// that memoization layers (the delivery-plan cache, `leaky_cpu`'s
    /// backend-throughput memo) pair with chain keys, so state cached
    /// under one configuration can never serve another.
    pub fn profile_key(&self) -> u64 {
        leaky_uarch::config_fingerprint(
            &self.geometry,
            &self.costs,
            &[
                self.lsd_enabled as u64,
                match self.dsb_policy {
                    SmtDsbPolicy::Competitive => 0,
                    SmtDsbPolicy::SetPartitioned => 1,
                    SmtDsbPolicy::Shared => 2,
                },
                self.flush_on_partition as u64,
                self.lsd_warmup_iterations as u64,
            ],
        )
    }

    /// The L1I cache geometry this configuration implies (Table I values
    /// live in [`FrontendGeometry`]; a perturbed geometry gets a matching
    /// perturbed cache instead of the hardcoded Skylake preset).
    pub(crate) fn l1i_config(&self) -> CacheConfig {
        CacheConfig {
            sets: self.geometry.l1i_sets,
            ways: self.geometry.l1i_ways,
            line_bytes: self.geometry.l1i_line_bytes,
        }
    }
}

impl Default for FrontendConfig {
    fn default() -> Self {
        FrontendConfig {
            geometry: FrontendGeometry::skylake(),
            costs: CostModel::skylake(),
            lsd_enabled: true,
            dsb_policy: SmtDsbPolicy::Competitive,
            flush_on_partition: true,
            lsd_warmup_iterations: 3,
        }
    }
}

/// Upper bound on lock-membership lines: a locked loop streams at most
/// [`FrontendGeometry::lsd_uops`] µops and every DSB line stores at
/// least one µop, so a qualifying loop never spans more lines than its
/// LSD capacity — 64 on every Table I machine; 128 leaves headroom for
/// ablation profiles that double it.
const MAX_LOCK_LINES: usize = 128;

/// Upper bound on tracked distinct sibling crossings: the lock collapses
/// once `lines + 2 × crossings` exceeds the 8-window tracking capacity,
/// so the live set stays tiny; 16 covers any plausible ablation geometry.
/// Overflow is treated as a collapse.
const MAX_LOCK_CROSSINGS: usize = 16;

/// Longest report cycle `run_iterations` recognises as steady state.
const MAX_STEADY_PERIOD: usize = 16;

/// A loop currently locked into the LSD of one thread. All bookkeeping is
/// inline (no heap): membership is a sorted array of packed
/// `(window << 8) | chunk` entries copied from the delivery plan, probed
/// by binary search on evictions.
#[derive(Debug, Clone)]
struct LoopLock {
    key: u64,
    uops: u32,
    /// Bitmask of DSB sets the loop's lines occupy (one bit per set;
    /// wide enough for ablation geometries of up to 64 sets).
    set_mask: u64,
    /// Sorted packed line members (inclusive property: evicting any of
    /// them flushes the lock). Only `lines[..n_lines]` is meaningful.
    lines: [u64; MAX_LOCK_LINES],
    n_lines: u8,
    /// Head windows of *sibling-thread* window-crossing blocks executed in
    /// overlapping sets while this lock is live. The shared window-tracking
    /// model (§IV-G, Fig. 6): the lock collapses once
    /// `lines + 2 × crossings` exceeds the LSD's window capacity — without
    /// any DSB eviction, so delivery falls back to the (faster) DSB.
    /// Only `crossings[..n_crossings]` is meaningful.
    crossings: [u64; MAX_LOCK_CROSSINGS],
    n_crossings: u8,
}

impl LoopLock {
    fn contains_line(&self, packed: u64) -> bool {
        self.lines[..self.n_lines as usize]
            .binary_search(&packed)
            .is_ok()
    }

    /// Records a (deduplicated) sibling crossing; returns the updated
    /// distinct-crossing count, or `None` when the inline capacity would
    /// overflow (callers treat that as a collapse — reachable only with
    /// window-tracking capacities far beyond any Table I machine).
    fn note_crossing(&mut self, window: u64) -> Option<usize> {
        let n = self.n_crossings as usize;
        if self.crossings[..n].contains(&window) {
            return Some(n);
        }
        if n >= MAX_LOCK_CROSSINGS {
            return None;
        }
        self.crossings[n] = window;
        self.n_crossings += 1;
        Some(n + 1)
    }
}

/// The simulated frontend shared by two hardware threads.
///
/// See the [crate-level documentation](crate) for the model, and
/// [`Frontend::run_iteration`] for the central operation.
#[derive(Debug, Clone)]
pub struct Frontend {
    config: FrontendConfig,
    dsb: Dsb,
    l1i: SetAssocCache,
    locks: [Option<LoopLock>; 2],
    last_source: [UopSource; 2],
    active: [bool; 2],
    /// Pending LSD-flush penalty to charge when the thread next runs.
    pending_lsd_flush: [bool; 2],
    /// Extra MITE decode pressure exerted by the sibling thread (used by the
    /// §XI fingerprinting victim model); 0.0 = none.
    external_mite_pressure: [f64; 2],
    /// Per thread: (chain key, consecutive clean iterations) for LSD
    /// warm-up tracking.
    lock_streak: [(u64, u32); 2],
    cumulative: [IterationReport; 2],
    /// Memoized delivery plans for the chains this frontend executes,
    /// keyed by (chain key, `config_key`).
    plans: PlanCache,
    /// Cached [`FrontendConfig::profile_key`] of the active configuration
    /// (hashing per iteration would put FNV on the hot path).
    config_key: u64,
    /// Observability hook (DESIGN.md §12). Deliberately *not* part of
    /// [`FrontendConfig`]: tracing must never reach the profile key, the
    /// plan cache, or any other behavior-bearing state.
    trace: TraceHook,
}

/// [`UopSource`] → trace [`Source`] (the trace crate sits below this one
/// in the dependency graph, so it mirrors the enum rather than using it).
const fn trace_source(source: UopSource) -> Source {
    match source {
        UopSource::Lsd => Source::Lsd,
        UopSource::Dsb => Source::Dsb,
        UopSource::Mite => Source::Mite,
    }
}

impl Frontend {
    /// Creates an idle frontend.
    ///
    /// # Panics
    ///
    /// Panics on a degenerate cache geometry (`SetAssocCache::new`).
    pub fn new(config: FrontendConfig) -> Self {
        Frontend {
            dsb: Dsb::new(config.geometry, config.dsb_policy),
            l1i: SetAssocCache::new(config.l1i_config()),
            locks: [None, None],
            last_source: [UopSource::Dsb, UopSource::Dsb],
            active: [false, false],
            pending_lsd_flush: [false, false],
            external_mite_pressure: [0.0, 0.0],
            lock_streak: [(0, 0), (0, 0)],
            cumulative: [IterationReport::default(), IterationReport::default()],
            plans: PlanCache::default(),
            config_key: config.profile_key(),
            trace: TraceHook::Off,
            config,
        }
    }

    /// Creates an idle frontend for a microarchitecture profile (see
    /// [`FrontendConfig::from_profile`]).
    ///
    /// # Panics
    ///
    /// Panics on a degenerate cache geometry (`SetAssocCache::new`).
    pub fn with_profile(profile: &UarchProfile) -> Self {
        Self::new(FrontendConfig::from_profile(profile))
    }

    /// The configuration in use.
    pub fn config(&self) -> &FrontendConfig {
        &self.config
    }

    /// The cached profile key of the active configuration — what the
    /// plan cache (and `leaky_cpu`'s backend memo) pair with chain keys.
    pub fn profile_key(&self) -> u64 {
        self.config_key
    }

    /// Swaps in a new configuration, modeling a microcode update /
    /// machine change: the DSB and L1I are rebuilt empty for the new
    /// geometry and all LSD locks, streaks and pending penalties are
    /// dropped. Cumulative counters survive (callers that want a clean
    /// slate call [`Frontend::reset_counters`]); so does the memoized
    /// plan cache — its (chain, profile-key) entries make stale plans
    /// unreachable rather than requiring a flush, and switching *back*
    /// to a previous configuration rehits its plans.
    ///
    /// # Panics
    ///
    /// Panics on a degenerate cache geometry (`SetAssocCache::new`).
    pub fn reconfigure(&mut self, config: FrontendConfig) {
        self.dsb = Dsb::new(config.geometry, config.dsb_policy);
        self.l1i = SetAssocCache::new(config.l1i_config());
        self.locks = [None, None];
        self.last_source = [UopSource::Dsb, UopSource::Dsb];
        self.pending_lsd_flush = [false, false];
        self.lock_streak = [(0, 0), (0, 0)];
        self.config_key = config.profile_key();
        self.config = config;
    }

    /// Installs a trace hook. [`TraceHook::Off`] (the construction
    /// default) makes every emission site a single dead branch; the
    /// reports are bit-identical either way (pinned by the
    /// `trace_differential` property test).
    pub fn set_trace(&mut self, hook: TraceHook) {
        self.trace = hook;
    }

    /// The installed trace hook.
    pub fn trace(&self) -> &TraceHook {
        &self.trace
    }

    /// Mutable access to the trace hook (for emitting events from layers
    /// above, e.g. the covert channels' calibration/decode events).
    pub fn trace_mut(&mut self) -> &mut TraceHook {
        &mut self.trace
    }

    /// Detaches the trace hook, leaving tracing off.
    pub fn take_trace(&mut self) -> TraceHook {
        std::mem::take(&mut self.trace)
    }

    /// The DSB state (for probing/assertions).
    pub fn dsb(&self) -> &Dsb {
        &self.dsb
    }

    /// The shared L1 instruction cache.
    pub fn l1i(&self) -> &SetAssocCache {
        &self.l1i
    }

    /// Mutable access to the L1 instruction cache. Used by attack code that
    /// manipulates instruction-cache state directly (e.g. the L1I
    /// Flush+Reload Spectre baseline of Table VII).
    pub fn l1i_mut(&mut self) -> &mut SetAssocCache {
        &mut self.l1i
    }

    /// Whether both hardware threads are currently active.
    pub fn both_active(&self) -> bool {
        self.active[0] && self.active[1]
    }

    /// Marks a hardware thread active or idle. Transitions between solo and
    /// dual mode repartition the DSB (§IV-B) and may flush lines and LSD
    /// locks depending on [`FrontendConfig::dsb_policy`].
    pub fn set_active(&mut self, tid: ThreadId, active: bool) {
        let was_both = self.both_active();
        let previously_solo = if self.active[0] {
            Some(ThreadId::T0)
        } else if self.active[1] {
            Some(ThreadId::T1)
        } else {
            None
        };
        self.active[tid.index()] = active;
        let now_both = self.both_active();
        if was_both == now_both {
            return;
        }
        let flushed = self.dsb.set_partitioned(now_both);
        for line in &flushed {
            self.invalidate_lock_if_member(*line);
        }
        if now_both {
            // Competitive policy: the waking thread displaces the resident
            // thread's footprint (paper: partitioning "forces DSB evictions
            // of micro-ops of the first thread").
            if self.config.flush_on_partition && self.config.dsb_policy == SmtDsbPolicy::Competitive
            {
                if let Some(solo) = previously_solo {
                    if solo != tid {
                        let victims = self.dsb.flush_thread(solo.index() as u8);
                        for line in victims {
                            self.invalidate_lock_if_member(line);
                        }
                    }
                }
            }
            // LSD µop capacity halves: re-validate both locks.
            for t in 0..2 {
                let invalid = match &self.locks[t] {
                    Some(lock) => lock.uops as usize > self.config.geometry.lsd_uops / 2,
                    None => false,
                };
                if invalid {
                    self.locks[t] = None;
                    self.pending_lsd_flush[t] = true;
                    self.lock_streak[t].1 = 0;
                    self.trace.emit(|| TraceEvent::LsdUnlock {
                        thread: t as u8,
                        reason: UnlockReason::Partition,
                    });
                }
            }
        }
    }

    /// Sets the sibling-pressure factor on this thread's MITE decode costs
    /// (victim-model hook for the §XI side channel).
    pub fn set_external_mite_pressure(&mut self, tid: ThreadId, pressure: f64) {
        assert!(pressure >= 0.0, "pressure must be non-negative");
        self.external_mite_pressure[tid.index()] = pressure;
    }

    /// Cumulative counters for one thread since construction or
    /// [`Frontend::reset_counters`].
    pub fn counters(&self, tid: ThreadId) -> &IterationReport {
        &self.cumulative[tid.index()]
    }

    /// Clears cumulative counters (state is preserved).
    pub fn reset_counters(&mut self) {
        self.cumulative = [IterationReport::default(), IterationReport::default()];
    }

    /// Whether `tid`'s LSD currently streams the given chain.
    pub fn lsd_locked(&self, tid: ThreadId, chain: &BlockChain) -> bool {
        self.locks[tid.index()]
            .as_ref()
            .is_some_and(|l| l.key == chain.key())
    }

    /// Executes one iteration of a loop over `chain` on thread `tid`,
    /// returning what the frontend did.
    ///
    /// The first iteration of a cold loop decodes through the MITE and fills
    /// the DSB; once every backing line is resident and the loop qualifies
    /// (see [`crate::lsd_qualifies`]) the LSD locks it, and subsequent
    /// iterations stream from the LSD until an inclusive eviction or
    /// partition event flushes the lock.
    ///
    /// The first call for a given chain memoizes its delivery plan;
    /// subsequent iterations are allocation-free.
    ///
    /// # Panics
    ///
    /// Panics if the geometry's µops-per-line is zero
    /// (`Block::line_slots_for`).
    pub fn run_iteration(&mut self, tid: ThreadId, chain: &BlockChain) -> IterationReport {
        let plan = self
            .plans
            .get_or_build(chain, &self.config.geometry, self.config_key);
        self.run_iteration_plan(tid, &plan)
    }

    /// The hot path: one iteration over a prebuilt delivery plan.
    fn run_iteration_plan(&mut self, tid: ThreadId, plan: &DeliveryPlan) -> IterationReport {
        let t = tid.index();
        let mut report = IterationReport::new();

        if std::mem::take(&mut self.pending_lsd_flush[t]) {
            report.cycles += self.config.costs.lsd_flush;
            report.lsd_flushes += 1;
            self.last_source[t] = UopSource::Dsb;
            self.trace.emit(|| TraceEvent::LsdFlushPenalty {
                thread: t as u8,
                cycles: self.config.costs.lsd_flush,
            });
        }

        let key = plan.key;
        if self.lock_streak[t].0 == key {
            self.lock_streak[t].1 = self.lock_streak[t].1.saturating_add(1);
        } else {
            self.lock_streak[t] = (key, 1);
        }
        if let Some(lock) = &self.locks[t] {
            if lock.key == key {
                // LSD streaming: the rest of the frontend is off.
                let uops = plan.total_uops;
                report.cycles +=
                    self.config.costs.lsd_stream(uops) + self.config.costs.loop_overhead;
                report.add_uops(UopSource::Lsd, uops as u64);
                self.last_source[t] = UopSource::Lsd;
                // A streaming loop still occupies shared window-tracking
                // entries: its window-crossing blocks keep pressuring the
                // sibling's loop tracking (§IV-G, Fig. 6).
                if self.both_active() {
                    for i in 0..plan.crossing_head_windows.len() {
                        let window = plan.crossing_head_windows[i];
                        self.note_sibling_crossing(tid, window);
                    }
                }
                self.emit_iteration(t, &report, 1);
                self.cumulative[t] += report;
                return report;
            }
            // Different loop: the old lock dies (loop exit).
            self.locks[t] = None;
            self.trace.emit(|| TraceEvent::LsdUnlock {
                thread: t as u8,
                reason: UnlockReason::LoopExit,
            });
        }

        for &blk in &plan.blocks {
            self.fetch_l1i(
                &plan.cache_lines[blk.cache_start as usize..blk.cache_end as usize],
                &mut report,
            );
            if blk.has_lcp {
                self.deliver_lcp_block(tid, plan, blk, &mut report);
            } else {
                self.deliver_block(tid, plan, blk, &mut report);
            }
        }
        report.cycles += self.config.costs.loop_overhead;

        self.maybe_lock_lsd(tid, plan, key);
        self.emit_iteration(t, &report, 1);
        self.cumulative[t] += report;
        report
    }

    /// Emits the per-iteration event; `weight > 1` stands for that many
    /// identical iterations (the steady-state collapse).
    #[inline]
    fn emit_iteration(&mut self, t: usize, report: &IterationReport, weight: u64) {
        self.trace.emit(|| TraceEvent::Iteration {
            thread: t as u8,
            source: trace_source(report.dominant_source()),
            weight,
            cycles: report.cycles,
            lsd_uops: report.lsd_uops,
            dsb_uops: report.dsb_uops,
            mite_uops: report.mite_uops,
            lcp_stall_cycles: report.lcp_stall_cycles,
            switch_penalty_cycles: report.switch_penalty_cycles,
            dsb_to_mite_switches: report.dsb_to_mite_switches,
            dsb_evictions: report.dsb_evictions,
            lsd_flushes: report.lsd_flushes,
            l1i_misses: report.l1i_misses,
        });
    }

    /// Runs `n` iterations, detecting steady state to avoid simulating every
    /// iteration of very long runs (e.g. Fig. 4's 800 M). Steady state is a
    /// *report cycle* of period `k ≤ 16` observed twice in a row (period 1 —
    /// exact repetition — is the seed's rule and the common case;
    /// oscillating delivery patterns settle into longer cycles). Counts
    /// then match the plain loop exactly and cycle totals agree up to
    /// `f64` summation order.
    ///
    /// **Known approximation** (inherited from the seed's period-1 rule,
    /// and load-bearing for the committed Table VII numbers): report
    /// equality is trusted even while the LSD warm-up streak is still
    /// counting, so a loop whose pre-lock iterations repeat exactly is
    /// extrapolated on its pre-lock delivery path rather than
    /// transitioning to LSD streaming mid-run. With the default
    /// three-iteration warm-up the cold-start transient breaks the
    /// repetition and the collapse is faithful; longer warm-ups can pin a
    /// qualifying loop to the DSB path (see
    /// `steady_state_collapse_can_freeze_lsd_warmup` and DESIGN.md §6).
    ///
    /// # Panics
    ///
    /// Panics if the geometry's µops-per-line is zero
    /// (`Block::line_slots_for`).
    pub fn run_iterations(&mut self, tid: ThreadId, chain: &BlockChain, n: u64) -> IterationReport {
        let plan = self
            .plans
            .get_or_build(chain, &self.config.geometry, self.config_key);
        let mut total = IterationReport::new();
        let mut history: Vec<IterationReport> = Vec::with_capacity(2 * MAX_STEADY_PERIOD);
        let mut done = 0u64;
        while done < n {
            let r = self.run_iteration_plan(tid, &plan);
            done += 1;
            if history.len() == 2 * MAX_STEADY_PERIOD {
                history.remove(0);
            }
            history.push(r);
            if done < n {
                if let Some(k) = detect_report_period(&history, MAX_STEADY_PERIOD) {
                    // The last k reports form a cycle: charge all complete
                    // remaining cycles at once.
                    let full_cycles = (n - done) / k as u64;
                    if full_cycles > 0 {
                        for rep in &history[history.len() - k..] {
                            let s = rep.scaled(full_cycles);
                            total += s;
                            self.cumulative[tid.index()] += s;
                            // One weighted event per cycle member keeps
                            // traced totals equal to the plain loop.
                            self.emit_iteration(tid.index(), rep, full_cycles);
                        }
                        done += full_cycles * k as u64;
                    }
                }
            }
            total += r;
        }
        total
    }

    /// Removes every DSB line and LSD lock belonging to `tid` (models
    /// context-switch / enclave teardown).
    pub fn flush_thread_state(&mut self, tid: ThreadId) {
        self.dsb.flush_thread(tid.index() as u8);
        self.locks[tid.index()] = None;
        self.pending_lsd_flush[tid.index()] = false;
    }

    fn fetch_l1i(&mut self, cache_lines: &[u64], report: &mut IterationReport) {
        for &line in cache_lines {
            report.l1i_accesses += 1;
            if !self.l1i.access_line(line).hit() {
                report.l1i_misses += 1;
                report.cycles += self.config.costs.l1i_miss;
            }
        }
    }

    fn mite_pressure_factor(&self, t: usize) -> f64 {
        1.0 + self.external_mite_pressure[t]
    }

    fn charge_switch(&mut self, t: usize, new_source: UopSource, report: &mut IterationReport) {
        let old = self.last_source[t];
        if old == new_source {
            return;
        }
        match (old, new_source) {
            (UopSource::Dsb | UopSource::Lsd, UopSource::Mite) => {
                let penalty = self.config.costs.dsb_to_mite_switch;
                report.cycles += penalty;
                report.switch_penalty_cycles += penalty;
                report.dsb_to_mite_switches += 1;
                self.emit_switch(t, old, new_source, penalty);
            }
            (UopSource::Mite, _) => {
                let penalty = self.config.costs.mite_to_dsb_switch;
                report.cycles += penalty;
                report.switch_penalty_cycles += penalty;
                self.emit_switch(t, old, new_source, penalty);
            }
            _ => {}
        }
        self.last_source[t] = new_source;
    }

    #[inline]
    fn emit_switch(&mut self, t: usize, from: UopSource, to: UopSource, penalty: f64) {
        self.trace.emit(|| TraceEvent::SourceSwitch {
            thread: t as u8,
            from: trace_source(from),
            to: trace_source(to),
            penalty_cycles: penalty,
        });
    }

    fn deliver_block(
        &mut self,
        tid: ThreadId,
        plan: &DeliveryPlan,
        blk: PlanBlock,
        report: &mut IterationReport,
    ) {
        let t = tid.index();
        let smt = self.both_active();
        if blk.crossing {
            report.cycles += self.config.costs.window_crossing_penalty;
            report.crossing_penalty_cycles += self.config.costs.window_crossing_penalty;
            if smt {
                self.note_sibling_crossing(tid, blk.head_window);
            }
        }
        for line in &plan.lines[blk.lines_start as usize..blk.lines_end as usize] {
            let lid = LineId {
                thread: t as u8,
                window: line.window,
                chunk: line.chunk,
            };
            let (hit, evicted) = self.dsb.access(lid);
            if hit {
                self.charge_switch(t, UopSource::Dsb, report);
                report.cycles += self.config.costs.dsb_line(line.uops);
                report.add_uops(UopSource::Dsb, line.uops as u64);
            } else {
                self.charge_switch(t, UopSource::Mite, report);
                report.cycles +=
                    self.config.costs.mite_line(line.uops, smt) * self.mite_pressure_factor(t);
                report.add_uops(UopSource::Mite, line.uops as u64);
                if let Some(evicted) = evicted {
                    report.dsb_evictions += 1;
                    self.invalidate_lock_if_member(evicted);
                }
            }
        }
    }

    /// Records that `tid` executed a window-crossing block (head window
    /// `window`) and, if the sibling thread has an LSD-locked loop
    /// occupying one of the same DSB sets, accounts it against the shared
    /// window-tracking capacity (the §IV-G / Fig. 6 misalignment-collision
    /// mechanism). The sibling's lock collapses — without DSB evictions —
    /// once `lock lines + 2 × distinct crossings > lsd_windows`.
    fn note_sibling_crossing(&mut self, tid: ThreadId, window: u64) {
        let sets = self.config.geometry.dsb_sets as u64;
        let other = tid.other().index();
        let head_set = window % sets;
        let window_cap = self.config.geometry.lsd_windows;
        let collapse = match &mut self.locks[other] {
            Some(lock) if lock.set_mask & (1u64 << head_set) != 0 => {
                match lock.note_crossing(window) {
                    Some(crossings) => lock.n_lines as usize + 2 * crossings > window_cap,
                    // Inline tracking overflow: only reachable with a
                    // window capacity far beyond Table I; treat as collapse.
                    None => true,
                }
            }
            _ => false,
        };
        if collapse {
            self.locks[other] = None;
            self.pending_lsd_flush[other] = true;
            // Loop-stream detection must re-warm from scratch.
            self.lock_streak[other].1 = 0;
            self.trace.emit(|| TraceEvent::LsdUnlock {
                thread: other as u8,
                reason: UnlockReason::SiblingCollapse,
            });
        }
    }

    /// Instruction-granular delivery for blocks containing LCP-prefixed
    /// instructions (§IV-H): LCP instructions always decode through the
    /// MITE with a pre-decode stall (amplified when LCPs are back-to-back),
    /// while plain instructions hit the DSB once warm. Path switches are
    /// charged per transition — this is what separates the paper's "mixed"
    /// and "ordered" issue patterns (Fig. 4).
    fn deliver_lcp_block(
        &mut self,
        tid: ThreadId,
        plan: &DeliveryPlan,
        blk: PlanBlock,
        report: &mut IterationReport,
    ) {
        let t = tid.index();
        let smt = self.both_active();
        let costs = self.config.costs;
        let pressure = self.mite_pressure_factor(t);
        let smt_factor = if smt { costs.smt_mite_factor } else { 1.0 };
        // Instruction-granular switch accounting with pipelined (reduced)
        // effective penalties — see CostModel::lcp_dsb_to_mite_switch.
        let charge_lcp_switch =
            |last: &mut UopSource, new_source: UopSource, report: &mut IterationReport| {
                if *last == new_source {
                    return;
                }
                match (*last, new_source) {
                    (UopSource::Dsb | UopSource::Lsd, UopSource::Mite) => {
                        report.cycles += costs.lcp_dsb_to_mite_switch;
                        report.switch_penalty_cycles += costs.lcp_dsb_to_mite_switch;
                        report.dsb_to_mite_switches += 1;
                    }
                    (UopSource::Mite, _) => {
                        report.cycles += costs.lcp_mite_to_dsb_switch;
                        report.switch_penalty_cycles += costs.lcp_mite_to_dsb_switch;
                    }
                    _ => {}
                }
                *last = new_source;
            };
        let mut last = self.last_source[t];
        let mut prev_lcp = false;
        let stall_before = report.lcp_stall_cycles;
        for instr in &plan.instrs[blk.instr_start as usize..blk.instr_end as usize] {
            if instr.has_lcp {
                charge_lcp_switch(&mut last, UopSource::Mite, report);
                let stall = costs.lcp_stall
                    + if prev_lcp {
                        costs.lcp_sequential_extra
                    } else {
                        0.0
                    };
                report.cycles += (costs.mite_per_instr + stall) * smt_factor * pressure;
                report.lcp_stall_cycles += stall * smt_factor;
                report.add_uops(UopSource::Mite, instr.uops as u64);
                prev_lcp = true;
            } else {
                let lid = LineId {
                    thread: t as u8,
                    window: instr.window,
                    chunk: 0,
                };
                let (hit, evicted) = self.dsb.access(lid);
                if hit {
                    charge_lcp_switch(&mut last, UopSource::Dsb, report);
                    report.cycles += costs.dsb_per_uop * instr.uops as f64;
                    report.add_uops(UopSource::Dsb, instr.uops as u64);
                } else {
                    charge_lcp_switch(&mut last, UopSource::Mite, report);
                    report.cycles += costs.mite_per_instr * smt_factor * pressure;
                    report.add_uops(UopSource::Mite, instr.uops as u64);
                    if let Some(evicted) = evicted {
                        report.dsb_evictions += 1;
                        self.invalidate_lock_if_member(evicted);
                    }
                }
                prev_lcp = false;
            }
        }
        self.last_source[t] = last;
        // One event per stalled block; the per-instruction switch charges
        // stay inside the iteration counters (emitting per instruction
        // would dwarf every other event class).
        let block_stall = report.lcp_stall_cycles - stall_before;
        if block_stall > 0.0 {
            self.trace.emit(|| TraceEvent::LcpStall {
                thread: t as u8,
                stall_cycles: block_stall,
            });
        }
    }

    fn maybe_lock_lsd(&mut self, tid: ThreadId, plan: &DeliveryPlan, key: u64) {
        if !self.config.lsd_enabled {
            return;
        }
        // Loop-stream detection needs several identical iterations before
        // it engages (the streak was updated for this iteration already).
        debug_assert_eq!(self.lock_streak[tid.index()].0, key);
        if self.lock_streak[tid.index()].1 < self.config.lsd_warmup_iterations {
            return;
        }
        // LCP-bearing loops never stream from the LSD: the LCP forces the
        // MITE path every iteration (§IV-H).
        if plan.has_lcp {
            return;
        }
        let smt = self.both_active();
        if !plan.lsd_fits[usize::from(smt)] {
            return;
        }
        // A qualifying loop's µops bound its line count at MAX_LOCK_LINES;
        // this is only reachable under ablation geometries that enlarge
        // the LSD beyond anything the paper models.
        if plan.lock_lines.len() > MAX_LOCK_LINES {
            debug_assert!(false, "lock membership exceeds inline capacity");
            return;
        }
        // Every backing DSB line must be resident (DSB ⊇ LSD).
        let t = tid.index();
        for line in &plan.lines {
            let lid = LineId {
                thread: t as u8,
                window: line.window,
                chunk: line.chunk,
            };
            if !self.dsb.resident(lid) {
                return;
            }
        }
        let mut lines = [0u64; MAX_LOCK_LINES];
        lines[..plan.lock_lines.len()].copy_from_slice(&plan.lock_lines);
        self.locks[t] = Some(LoopLock {
            key,
            uops: plan.total_uops,
            set_mask: plan.set_mask,
            lines,
            n_lines: plan.lock_lines.len() as u8,
            crossings: [0; MAX_LOCK_CROSSINGS],
            n_crossings: 0,
        });
        self.trace.emit(|| TraceEvent::LsdLock {
            thread: t as u8,
            uops: plan.total_uops,
            lines: plan.lock_lines.len() as u8,
        });
    }

    fn invalidate_lock_if_member(&mut self, evicted: LineId) {
        let t = evicted.thread as usize;
        let packed = pack_lock_member(evicted.window, evicted.chunk);
        let member = self.locks[t]
            .as_ref()
            .is_some_and(|l| l.contains_line(packed));
        if member {
            self.locks[t] = None;
            self.pending_lsd_flush[t] = true;
            self.lock_streak[t].1 = 0;
            self.trace.emit(|| TraceEvent::LsdUnlock {
                thread: t as u8,
                reason: UnlockReason::Eviction,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use leaky_isa::{same_set_chain, Alignment, DsbSet};

    const RECV_BASE: u64 = 0x0041_8000;
    const SEND_BASE: u64 = 0x0082_0000;

    fn frontend() -> Frontend {
        Frontend::new(FrontendConfig::default())
    }

    fn aligned(base: u64, set: u8, n: usize) -> BlockChain {
        same_set_chain(base, DsbSet::new(set), n, Alignment::Aligned)
    }

    #[test]
    fn cold_loop_decodes_via_mite_then_locks_lsd() {
        let mut fe = frontend();
        let chain = aligned(RECV_BASE, 0, 8);
        let cold = fe.run_iteration(ThreadId::T0, &chain);
        assert_eq!(cold.mite_uops, 40);
        assert_eq!(cold.lsd_uops, 0);
        // Lock engages only after the warm-up streak (3 iterations).
        assert!(!fe.lsd_locked(ThreadId::T0, &chain));
        fe.run_iteration(ThreadId::T0, &chain);
        fe.run_iteration(ThreadId::T0, &chain);
        assert!(fe.lsd_locked(ThreadId::T0, &chain));
        let warm = fe.run_iteration(ThreadId::T0, &chain);
        assert_eq!(warm.lsd_uops, 40);
        assert_eq!(warm.mite_uops, 0);
        assert!(warm.cycles < cold.cycles / 2.0);
    }

    #[test]
    fn nine_way_chain_never_locks_and_keeps_missing() {
        // §IV-F: 9 same-set blocks exceed both the 8 DSB ways and the LSD
        // window tracking; delivery oscillates DSB/MITE forever.
        let mut fe = frontend();
        let chain = aligned(RECV_BASE, 0, 9);
        for _ in 0..5 {
            let r = fe.run_iteration(ThreadId::T0, &chain);
            assert!(r.mite_uops > 0, "set conflicts must keep MITE busy");
            assert_eq!(r.lsd_uops, 0);
        }
        assert!(!fe.lsd_locked(ThreadId::T0, &chain));
    }

    #[test]
    fn eight_vs_nine_blocks_is_the_paper_timing_signal() {
        // The §IV-F eviction primitive: 8 blocks fast (LSD), 9 slow (MITE).
        let mut fe = frontend();
        let eight = aligned(RECV_BASE, 0, 8);
        let mut warm8 = IterationReport::new();
        for _ in 0..4 {
            warm8 = fe.run_iteration(ThreadId::T0, &eight);
        }
        let mut fe2 = frontend();
        let nine = aligned(RECV_BASE, 0, 9);
        let mut warm9 = IterationReport::new();
        for _ in 0..4 {
            warm9 = fe2.run_iteration(ThreadId::T0, &nine);
        }
        let per_block8 = warm8.cycles / 8.0;
        let per_block9 = warm9.cycles / 9.0;
        assert!(
            per_block9 > per_block8 * 1.5,
            "9-block chain must be much slower per block ({per_block8:.2} vs {per_block9:.2})"
        );
    }

    #[test]
    fn no_l1i_misses_after_warmup_for_nine_blocks() {
        // §IV-F: changing chain length 8 → 9 causes no L1I misses.
        let mut fe = frontend();
        let chain = aligned(RECV_BASE, 0, 9);
        fe.run_iteration(ThreadId::T0, &chain); // cold fills
        for _ in 0..3 {
            let r = fe.run_iteration(ThreadId::T0, &chain);
            assert_eq!(r.l1i_misses, 0);
        }
    }

    #[test]
    fn misaligned_chain_uses_dsb_not_lsd() {
        // §IV-G: 4 misaligned same-set blocks collide in the LSD but fit the
        // DSB (8 lines), so steady state is pure DSB delivery.
        let mut fe = frontend();
        let chain = same_set_chain(RECV_BASE, DsbSet::new(0), 4, Alignment::Misaligned);
        fe.run_iteration(ThreadId::T0, &chain);
        let warm = fe.run_iteration(ThreadId::T0, &chain);
        assert_eq!(warm.mite_uops, 0);
        assert_eq!(warm.lsd_uops, 0);
        assert_eq!(warm.dsb_uops, 20);
    }

    #[test]
    fn lsd_vs_dsb_timing_polarity() {
        // Fig. 2 / §V-B: steady-state LSD delivery is *slower* per µop than
        // DSB delivery — the misalignment channel's polarity.
        let mut fe = frontend();
        let lsd_chain = aligned(RECV_BASE, 0, 4);
        for _ in 0..3 {
            fe.run_iteration(ThreadId::T0, &lsd_chain);
        }
        let lsd_warm = fe.run_iteration(ThreadId::T0, &lsd_chain);
        assert_eq!(lsd_warm.lsd_uops, 20);

        // The same aligned loop, forced onto the DSB path (LSD off), streams
        // faster per iteration — the §V-B "LSD is slower in delivery" fact.
        let mut fe2 = Frontend::new(FrontendConfig {
            lsd_enabled: false,
            ..FrontendConfig::default()
        });
        fe2.run_iteration(ThreadId::T0, &lsd_chain);
        fe2.run_iteration(ThreadId::T0, &lsd_chain); // absorb MITE→DSB switch
        let dsb_warm = fe2.run_iteration(ThreadId::T0, &lsd_chain);
        assert_eq!(dsb_warm.dsb_uops, 20);

        assert!(dsb_warm.cycles < lsd_warm.cycles);
    }

    #[test]
    fn cross_thread_eviction_breaks_lsd_lock() {
        // The MT eviction channel mechanism (§V-A): sender inserts
        // N+1-d same-set lines, evicting receiver lines and flushing the
        // receiver's LSD.
        let mut fe = frontend();
        fe.set_active(ThreadId::T0, true);
        let recv = aligned(RECV_BASE, 0, 6);
        for _ in 0..3 {
            fe.run_iteration(ThreadId::T0, &recv);
        }
        assert!(fe.lsd_locked(ThreadId::T0, &recv));

        fe.set_active(ThreadId::T1, true);
        let send = aligned(SEND_BASE, 0, 3);
        // With flush_on_partition the wake itself flushed T0; re-warm to
        // test pure way-contention too.
        for _ in 0..4 {
            fe.run_iteration(ThreadId::T0, &recv);
        }
        assert!(fe.lsd_locked(ThreadId::T0, &recv));
        fe.run_iteration(ThreadId::T1, &send); // 6 + 3 > 8 ways
        assert!(!fe.lsd_locked(ThreadId::T0, &recv));
        let after = fe.run_iteration(ThreadId::T0, &recv);
        assert!(after.mite_uops > 0, "receiver must re-decode via MITE");
        assert!(after.lsd_flushes > 0, "flush penalty charged");
    }

    #[test]
    fn sender_to_different_set_leaves_receiver_alone() {
        // Stealthy m=0 encoding (§V-C): same work, different set, no signal.
        let mut fe = frontend();
        fe.set_active(ThreadId::T0, true);
        fe.set_active(ThreadId::T1, true);
        let recv = aligned(RECV_BASE, 0, 6);
        let send_y = aligned(SEND_BASE, 7, 3);
        for _ in 0..3 {
            fe.run_iteration(ThreadId::T0, &recv);
        }
        // Receiver (30 µops) locks into the (halved) LSD even under SMT.
        let warm_before = fe.run_iteration(ThreadId::T0, &recv);
        fe.run_iteration(ThreadId::T1, &send_y);
        let warm_after = fe.run_iteration(ThreadId::T0, &recv);
        assert_eq!(warm_before.mite_uops, 0);
        assert_eq!(warm_after.mite_uops, 0, "different set: no interference");
        assert_eq!(warm_before.cycles, warm_after.cycles);
    }

    #[test]
    fn sibling_misalignment_collapses_lsd_without_evictions() {
        // Fig. 6 mechanism: sender executes misaligned same-set blocks; the
        // receiver's LSD lock collapses but its DSB lines survive, so the
        // receiver's next iteration is pure (fast) DSB delivery.
        let mut fe = frontend();
        fe.set_active(ThreadId::T0, true);
        fe.set_active(ThreadId::T1, true);
        let recv = aligned(RECV_BASE, 0, 5); // d = 5 (paper §V-B)
        for _ in 0..3 {
            fe.run_iteration(ThreadId::T0, &recv);
        }
        assert!(fe.lsd_locked(ThreadId::T0, &recv));
        let lsd_iter = fe.run_iteration(ThreadId::T0, &recv);
        assert_eq!(lsd_iter.lsd_uops, 25);

        // One misaligned sender block: 5 + 2 = 7 ≤ 8, lock survives.
        let send1 = same_set_chain(SEND_BASE, DsbSet::new(0), 1, Alignment::Misaligned);
        fe.run_iteration(ThreadId::T1, &send1);
        assert!(fe.lsd_locked(ThreadId::T0, &recv));

        // Two more misaligned sender blocks ({5 aligned + 3 misaligned} is a
        // §IV-G collision pair): 5 + 2·3 > 8 collapses the receiver's lock.
        // Sender heads total 3 lines, so set 0 holds 5 + 3 = 8 lines and no
        // DSB eviction occurs.
        let send2 = same_set_chain(
            SEND_BASE + 0x10_0000,
            DsbSet::new(0),
            2,
            Alignment::Misaligned,
        );
        fe.run_iteration(ThreadId::T1, &send2);
        assert!(!fe.lsd_locked(ThreadId::T0, &recv));

        let after = fe.run_iteration(ThreadId::T0, &recv);
        assert_eq!(after.mite_uops, 0, "no DSB evictions: no MITE refetch");
        assert_eq!(after.dsb_uops, 25, "delivery falls back to the DSB");
        // DSB delivery is *faster* than LSD streaming — the paper's
        // misalignment-channel polarity (§V-B): m = 1 gives faster access.
        let dsb_iter = fe.run_iteration(ThreadId::T0, &recv);
        if dsb_iter.dsb_uops == 25 {
            assert!(dsb_iter.cycles < lsd_iter.cycles);
        }
    }

    #[test]
    fn sibling_misalignment_to_other_set_is_harmless() {
        let mut fe = frontend();
        fe.set_active(ThreadId::T0, true);
        fe.set_active(ThreadId::T1, true);
        let recv = aligned(RECV_BASE, 0, 5);
        for _ in 0..3 {
            fe.run_iteration(ThreadId::T0, &recv);
        }
        assert!(fe.lsd_locked(ThreadId::T0, &recv));
        let send = same_set_chain(SEND_BASE, DsbSet::new(9), 3, Alignment::Misaligned);
        fe.run_iteration(ThreadId::T1, &send);
        assert!(
            fe.lsd_locked(ThreadId::T0, &recv),
            "disjoint sets: no collision"
        );
    }

    #[test]
    fn crossing_blocks_pay_split_fetch_penalty() {
        // §V-D basis: executing misaligned blocks is measurably slower than
        // the same blocks aligned, even without any conflicts.
        let aligned3 = same_set_chain(RECV_BASE, DsbSet::new(0), 3, Alignment::Aligned);
        let mis3 = same_set_chain(RECV_BASE, DsbSet::new(0), 3, Alignment::Misaligned);
        // LSD disabled so both warm to steady DSB delivery, isolating the
        // crossing penalty.
        let no_lsd = FrontendConfig {
            lsd_enabled: false,
            ..FrontendConfig::default()
        };
        let mut fe_a = Frontend::new(no_lsd);
        let mut fe_m = Frontend::new(no_lsd);
        for _ in 0..3 {
            fe_a.run_iteration(ThreadId::T0, &aligned3);
            fe_m.run_iteration(ThreadId::T0, &mis3);
        }
        let a = fe_a.run_iteration(ThreadId::T0, &aligned3);
        let m = fe_m.run_iteration(ThreadId::T0, &mis3);
        assert!(m.cycles > a.cycles, "crossing blocks must cost extra");
    }

    #[test]
    fn partition_wake_flushes_solo_thread() {
        let mut fe = frontend();
        fe.set_active(ThreadId::T0, true);
        let recv = aligned(RECV_BASE, 3, 4);
        fe.run_iteration(ThreadId::T0, &recv);
        assert!(fe.dsb().occupancy(0) > 0);
        fe.set_active(ThreadId::T1, true);
        assert_eq!(
            fe.dsb().occupancy(0),
            0,
            "waking sibling must displace solo thread's lines"
        );
    }

    #[test]
    fn lsd_disabled_machines_never_lock() {
        let mut fe = Frontend::new(FrontendConfig {
            lsd_enabled: false,
            ..FrontendConfig::default()
        });
        let chain = aligned(RECV_BASE, 0, 4);
        for _ in 0..4 {
            fe.run_iteration(ThreadId::T0, &chain);
        }
        assert!(!fe.lsd_locked(ThreadId::T0, &chain));
        let warm = fe.run_iteration(ThreadId::T0, &chain);
        assert_eq!(warm.dsb_uops, 20, "falls back to DSB, not LSD");
    }

    #[test]
    fn lcp_mixed_vs_ordered_shapes() {
        // Fig. 4 shape: mixed issue has far more DSB→MITE switches; ordered
        // issue has more LCP stall cycles; mixed achieves higher IPC
        // (fewer total cycles for the same instruction count).
        use leaky_isa::{Addr, Block, LcpPattern};
        let mut fe_m = frontend();
        let mixed = BlockChain::new(vec![Block::lcp_adds(
            Addr::new(0x10_0000),
            LcpPattern::Mixed,
            16,
        )]);
        let mut fe_o = frontend();
        let ordered = BlockChain::new(vec![Block::lcp_adds(
            Addr::new(0x10_0000),
            LcpPattern::Ordered,
            16,
        )]);
        // Warm both, then compare steady-state iterations.
        for _ in 0..3 {
            fe_m.run_iteration(ThreadId::T0, &mixed);
            fe_o.run_iteration(ThreadId::T0, &ordered);
        }
        let m = fe_m.run_iteration(ThreadId::T0, &mixed);
        let o = fe_o.run_iteration(ThreadId::T0, &ordered);
        assert!(
            m.dsb_to_mite_switches > 10 * o.dsb_to_mite_switches,
            "mixed must switch far more ({} vs {})",
            m.dsb_to_mite_switches,
            o.dsb_to_mite_switches
        );
        assert!(
            o.lcp_stall_cycles > m.lcp_stall_cycles,
            "ordered must stall longer ({} vs {})",
            o.lcp_stall_cycles,
            m.lcp_stall_cycles
        );
        assert!(m.mite_uops > 0 && o.mite_uops > 0);
        assert_eq!(m.total_uops(), o.total_uops());
    }

    #[test]
    fn run_iterations_steady_state_matches_explicit_loop() {
        let chain = aligned(RECV_BASE, 0, 8);
        let mut fe_a = frontend();
        let total_fast = fe_a.run_iterations(ThreadId::T0, &chain, 1000);
        let mut fe_b = frontend();
        let mut total_slow = IterationReport::new();
        for _ in 0..1000 {
            total_slow += fe_b.run_iteration(ThreadId::T0, &chain);
        }
        // Counts match exactly; cycle sums only up to f64 summation order.
        assert_eq!(total_fast.total_uops(), total_slow.total_uops());
        assert_eq!(total_fast.lsd_uops, total_slow.lsd_uops);
        assert_eq!(total_fast.dsb_evictions, total_slow.dsb_evictions);
        assert!((total_fast.cycles - total_slow.cycles).abs() / total_slow.cycles < 1e-9);
    }

    #[test]
    fn run_iterations_collapses_mite_thrash_in_constant_time() {
        // The 9-way §IV-F chain repeats the same all-miss report, so even a
        // Fig. 4-scale run must cost a handful of live iterations. 800 M
        // naive iterations would take minutes; this must be instant.
        let chain = aligned(RECV_BASE, 0, 9);
        let mut fe = frontend();
        let total = fe.run_iterations(ThreadId::T0, &chain, 800_000_000);
        assert_eq!(total.total_uops(), 800_000_000 * 45);
        assert_eq!(total.lsd_uops, 0);
        // Exact-arithmetic cross-check on a small prefix.
        let mut fe2 = frontend();
        let small = fe2.run_iterations(ThreadId::T0, &chain, 100);
        let mut fe3 = frontend();
        let mut slow = IterationReport::new();
        for _ in 0..100 {
            slow += fe3.run_iteration(ThreadId::T0, &chain);
        }
        assert_eq!(small.total_uops(), slow.total_uops());
        assert_eq!(small.dsb_evictions, slow.dsb_evictions);
    }

    #[test]
    fn run_iterations_matches_plain_loop_at_default_warmup() {
        // With the default warm-up, the cold-start transient (one-off
        // MITE→DSB switch penalties) breaks report repetition until the
        // lock decision is behind us, so the collapse is faithful to the
        // plain loop including the LSD transition.
        let chain = aligned(RECV_BASE, 0, 8);
        let mut fast = frontend();
        let total_fast = fast.run_iterations(ThreadId::T0, &chain, 100);
        let mut slow = frontend();
        let mut total_slow = IterationReport::new();
        for _ in 0..100 {
            total_slow += slow.run_iteration(ThreadId::T0, &chain);
        }
        assert!(total_slow.lsd_uops > 0, "the loop must eventually stream");
        assert_eq!(total_fast.lsd_uops, total_slow.lsd_uops);
        assert_eq!(total_fast.dsb_uops, total_slow.dsb_uops);
        assert_eq!(total_fast.mite_uops, total_slow.mite_uops);
    }

    #[test]
    fn steady_state_collapse_can_freeze_lsd_warmup() {
        // Characterizes the documented approximation inherited from the
        // seed (see `run_iterations` docs): with a warm-up longer than the
        // default, the pre-lock DSB iterations repeat exactly and the
        // detector extrapolates them, so the loop never transitions to LSD
        // streaming inside `run_iterations`. The committed Table VII
        // miss-rate numbers depend on this rule; revisiting it is a
        // calibration-level change, not a hot-path one.
        let config = FrontendConfig {
            lsd_warmup_iterations: 5,
            ..FrontendConfig::default()
        };
        let chain = aligned(RECV_BASE, 0, 8);
        let mut collapsed = Frontend::new(config);
        let fast = collapsed.run_iterations(ThreadId::T0, &chain, 100);
        assert_eq!(fast.lsd_uops, 0, "pre-lock path extrapolated (documented)");
        let mut slow = Frontend::new(config);
        let mut plain = IterationReport::new();
        for _ in 0..100 {
            plain += slow.run_iteration(ThreadId::T0, &chain);
        }
        assert!(plain.lsd_uops > 0, "the plain loop locks after warm-up");
        // Totals still conserve work: same µop count, different paths.
        assert_eq!(fast.total_uops(), plain.total_uops());
    }

    #[test]
    fn run_iterations_handles_period_two_report_cycles() {
        // Force an oscillating report sequence by alternating a warm LSD
        // loop with a one-off pending flush: simulate the generalized
        // period detector on a crafted frontend where iteration reports
        // alternate between two values. We synthesize this by running a
        // chain whose warm-up transient differs from steady state and
        // checking that the totals still match the naive loop exactly on
        // counts for several n values (the detector must never over- or
        // under-count whatever period it snaps to).
        let chain = same_set_chain(RECV_BASE, DsbSet::new(0), 4, Alignment::Misaligned);
        for n in [1u64, 2, 3, 7, 50, 1000] {
            let mut fast = frontend();
            let total_fast = fast.run_iterations(ThreadId::T0, &chain, n);
            let mut slow = frontend();
            let mut total_slow = IterationReport::new();
            for _ in 0..n {
                total_slow += slow.run_iteration(ThreadId::T0, &chain);
            }
            assert_eq!(total_fast.total_uops(), total_slow.total_uops(), "n={n}");
            assert_eq!(total_fast.dsb_uops, total_slow.dsb_uops, "n={n}");
            assert_eq!(total_fast.dsb_evictions, total_slow.dsb_evictions);
            assert!((total_fast.cycles - total_slow.cycles).abs() <= 1e-9 * total_slow.cycles);
        }
    }

    #[test]
    fn reconfigure_invalidates_stale_plans_and_state() {
        use leaky_uarch::UarchProfile;
        // A 31-nop window: 6 DSB lines at the Skylake 6-µop capacity but
        // only 4 at the Ice-Lake-class 8-µop capacity. If reconfiguring
        // reused the memoized Skylake plan, the line accounting (and with
        // it every counter) would be wrong.
        use leaky_isa::{Addr, Block};
        let chain = BlockChain::new(vec![Block::nops(Addr::new(0x3000), 31)]);
        let mut fe = Frontend::with_profile(&UarchProfile::skylake());
        let sky_cold = fe.run_iteration(ThreadId::T0, &chain);
        let icl_config = FrontendConfig::from_profile(&UarchProfile::icelake());
        fe.reconfigure(icl_config);
        assert_eq!(fe.profile_key(), icl_config.profile_key());
        let icl_cold = fe.run_iteration(ThreadId::T0, &chain);
        // Both are cold MITE fills of the same 32 + 5 µops...
        assert_eq!(icl_cold.total_uops(), sky_cold.total_uops());
        // ...but a fresh Ice-Lake frontend must agree exactly with the
        // reconfigured one — the reconfigured engine may not have reused
        // the Skylake plan's splits.
        let mut fresh = Frontend::new(icl_config);
        let fresh_cold = fresh.run_iteration(ThreadId::T0, &chain);
        assert_eq!(icl_cold, fresh_cold);
        // Switching back rehits the original plan and the original costs.
        fe.reconfigure(FrontendConfig::default());
        let sky_again = fe.run_iteration(ThreadId::T0, &chain);
        assert_eq!(sky_again, sky_cold);
    }

    #[test]
    fn l1i_follows_the_configured_geometry() {
        let mut geom = FrontendGeometry::skylake();
        geom.l1i_ways = 12;
        geom.l1i_sets = 32;
        let fe = Frontend::new(FrontendConfig {
            geometry: geom,
            ..FrontendConfig::default()
        });
        assert_eq!(fe.l1i().config().ways, 12);
        assert_eq!(fe.l1i().config().sets, 32);
        // Default remains the Table I 32 KB / 8-way / 64-set shape.
        let default_fe = frontend();
        assert_eq!(default_fe.l1i().config().sets, 64);
        assert_eq!(default_fe.l1i().config().ways, 8);
    }

    #[test]
    fn skylake_profile_config_is_bit_identical_to_default() {
        let from_profile = FrontendConfig::from_profile(&leaky_uarch::UarchProfile::skylake());
        assert_eq!(from_profile, FrontendConfig::default());
        assert_eq!(
            from_profile.profile_key(),
            FrontendConfig::default().profile_key()
        );
        // Any field change moves the key.
        let perturbed = FrontendConfig {
            lsd_warmup_iterations: 4,
            ..FrontendConfig::default()
        };
        assert_ne!(perturbed.profile_key(), from_profile.profile_key());
    }

    #[test]
    fn cumulative_counters_accumulate() {
        let mut fe = frontend();
        let chain = aligned(RECV_BASE, 0, 4);
        let a = fe.run_iteration(ThreadId::T0, &chain);
        let b = fe.run_iteration(ThreadId::T0, &chain);
        assert_eq!(
            fe.counters(ThreadId::T0).total_uops(),
            a.total_uops() + b.total_uops()
        );
        fe.reset_counters();
        assert_eq!(fe.counters(ThreadId::T0).total_uops(), 0);
    }

    #[test]
    fn flush_thread_state_forces_cold_restart() {
        let mut fe = frontend();
        let chain = aligned(RECV_BASE, 0, 4);
        fe.run_iteration(ThreadId::T0, &chain);
        fe.run_iteration(ThreadId::T0, &chain);
        fe.flush_thread_state(ThreadId::T0);
        let r = fe.run_iteration(ThreadId::T0, &chain);
        assert_eq!(r.mite_uops, 20, "all lines must refill after flush");
    }

    #[test]
    fn external_pressure_slows_mite_only() {
        let chain = aligned(RECV_BASE, 0, 9); // permanent MITE traffic
        let mut base = frontend();
        for _ in 0..3 {
            base.run_iteration(ThreadId::T0, &chain);
        }
        let r0 = base.run_iteration(ThreadId::T0, &chain);
        let mut loaded = frontend();
        loaded.set_external_mite_pressure(ThreadId::T0, 1.0);
        for _ in 0..3 {
            loaded.run_iteration(ThreadId::T0, &chain);
        }
        let r1 = loaded.run_iteration(ThreadId::T0, &chain);
        assert!(r1.cycles > r0.cycles);

        // A pure-LSD loop is immune to MITE pressure.
        let lsd_chain = aligned(RECV_BASE, 1, 4);
        let mut a = frontend();
        a.run_iteration(ThreadId::T0, &lsd_chain);
        let wa = a.run_iteration(ThreadId::T0, &lsd_chain);
        let mut b = frontend();
        b.set_external_mite_pressure(ThreadId::T0, 1.0);
        b.run_iteration(ThreadId::T0, &lsd_chain);
        let wb = b.run_iteration(ThreadId::T0, &lsd_chain);
        assert_eq!(wa.cycles, wb.cycles);
    }

    #[test]
    fn tracing_never_changes_reports_or_profile_key() {
        use leaky_trace::TraceMode;
        let chain = aligned(RECV_BASE, 0, 8);
        let mut off = frontend();
        let mut traced = frontend();
        traced.set_trace(TraceHook::new(TraceMode::Events));
        assert_eq!(off.profile_key(), traced.profile_key());
        for _ in 0..6 {
            let a = off.run_iteration(ThreadId::T0, &chain);
            let b = traced.run_iteration(ThreadId::T0, &chain);
            assert_eq!(a, b);
        }
        assert_eq!(
            off.counters(ThreadId::T0),
            traced.counters(ThreadId::T0),
            "trace hook must be behavior-free"
        );
        assert_eq!(off.profile_key(), traced.profile_key());
        let events = traced.take_trace().events().map(<[_]>::len);
        assert!(
            events.is_some_and(|n| n >= 6),
            "events recorded: {events:?}"
        );
        assert!(traced.trace().is_off(), "take_trace leaves tracing off");
    }

    #[test]
    fn traced_run_iterations_weights_match_plain_counts() {
        use leaky_trace::{TraceHook, TraceMode};
        let chain = aligned(RECV_BASE, 2, 4);
        let n = 10_000u64;
        let mut fe = frontend();
        fe.set_trace(TraceHook::new(TraceMode::Summary));
        let total = fe.run_iterations(ThreadId::T0, &chain, n);
        let summary = fe.take_trace().summary().expect("hook was on");
        // The steady-state collapse stands behind weighted events, so the
        // folded iteration count still matches the requested n ...
        assert_eq!(summary.iterations, n);
        // ... and the weighted per-source uop totals match the report.
        let lsd = summary.per_source[leaky_trace::Source::Lsd.index()].uops;
        let mite = summary.per_source[leaky_trace::Source::Mite.index()].uops;
        assert_eq!(lsd, total.lsd_uops);
        assert_eq!(mite, total.mite_uops);
        assert!(summary.lsd_locks >= 1);
    }

    #[test]
    fn unlock_reasons_are_attributed() {
        use leaky_trace::{TraceHook, TraceMode, UnlockReason};
        // Loop-exit unlock: lock loop A, then run a different loop.
        let a = aligned(RECV_BASE, 0, 4);
        let b = aligned(SEND_BASE, 1, 4);
        let mut fe = frontend();
        fe.set_trace(TraceHook::new(TraceMode::Summary));
        for _ in 0..4 {
            fe.run_iteration(ThreadId::T0, &a);
        }
        assert!(fe.lsd_locked(ThreadId::T0, &a));
        fe.run_iteration(ThreadId::T0, &b);
        assert!(!fe.lsd_locked(ThreadId::T0, &a));
        let summary = fe.take_trace().summary().expect("hook was on");
        assert_eq!(summary.lsd_unlocks[UnlockReason::LoopExit.index()], 1);
        assert!(summary.lsd_locks >= 1);
    }
}

//! RAPL-style energy counter and frontend power model.
//!
//! The paper's power-based channels (§VII) observe that delivering µops via
//! the LSD, the DSB or the MITE draws measurably different package power
//! (Fig. 9: roughly 50 W / 55 W / 65 W on the Xeon Gold 6226), and read the
//! difference through Intel's Running Average Power Limit (RAPL) interface.
//! Two properties of RAPL shape the attacks and are modeled here:
//!
//! * the counter is **cumulative energy** (µJ), so attackers compute power as
//!   ΔE/Δt between two reads;
//! * it only **updates at ~20 kHz** (every ~50 µs, §VII), which caps the
//!   channel bandwidth — hence the paper's p = q = 240 000 iterations per
//!   bit and ~0.6 Kbps rates (Table V).
//!
//! # Examples
//!
//! ```
//! use leaky_power::{DeliveryClass, PowerModel, Rapl};
//!
//! let model = PowerModel::gold6226();
//! let mut rapl = Rapl::new(42);
//! // 1 ms of pure-MITE delivery at 2.7 GHz:
//! let joules = model.energy_joules(DeliveryClass::Mite, 2_700_000.0, 2.7e9);
//! rapl.deposit(joules, 0.001);
//! let reading = rapl.read(0.0011);
//! assert!(reading > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;

/// Which frontend structure delivered a span of µops, for power accounting.
///
/// This mirrors the frontend simulator's delivery paths without depending on
/// it, so the power model stays reusable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeliveryClass {
    /// µops streamed from the Loop Stream Detector (lowest power).
    Lsd,
    /// µops delivered from the DSB / micro-op cache.
    Dsb,
    /// µops decoded by the legacy MITE pipeline (highest power).
    Mite,
    /// Frontend idle / other activity (baseline package power).
    Idle,
}

impl fmt::Display for DeliveryClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DeliveryClass::Lsd => "LSD",
            DeliveryClass::Dsb => "DSB",
            DeliveryClass::Mite => "MITE",
            DeliveryClass::Idle => "idle",
        };
        f.write_str(s)
    }
}

/// Package power by frontend delivery class, in watts.
///
/// Values fitted to the paper's Fig. 9 histogram for the Xeon Gold 6226
/// (LSD ≈ 50 W, DSB ≈ 55 W, MITE+DSB ≈ 65 W).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerModel {
    /// Package power while streaming from the LSD.
    pub lsd_watts: f64,
    /// Package power while delivering from the DSB.
    pub dsb_watts: f64,
    /// Package power while the MITE decoders are active.
    pub mite_watts: f64,
    /// Idle package power.
    pub idle_watts: f64,
    /// Gaussian noise (σ, watts) on instantaneous power — thermal and
    /// workload noise visible in Fig. 9's overlapping distributions.
    pub noise_sigma_watts: f64,
}

impl PowerModel {
    /// Fig. 9 fit for the Intel Xeon Gold 6226.
    pub const fn gold6226() -> Self {
        PowerModel {
            lsd_watts: 50.0,
            dsb_watts: 55.0,
            mite_watts: 65.0,
            idle_watts: 38.0,
            noise_sigma_watts: 1.6,
        }
    }

    /// Mean power for a delivery class.
    pub const fn watts(&self, class: DeliveryClass) -> f64 {
        match class {
            DeliveryClass::Lsd => self.lsd_watts,
            DeliveryClass::Dsb => self.dsb_watts,
            DeliveryClass::Mite => self.mite_watts,
            DeliveryClass::Idle => self.idle_watts,
        }
    }

    /// Energy in joules for `cycles` of execution in `class` at `freq_hz`.
    pub fn energy_joules(&self, class: DeliveryClass, cycles: f64, freq_hz: f64) -> f64 {
        assert!(freq_hz > 0.0, "frequency must be positive");
        self.watts(class) * cycles / freq_hz
    }

    /// A noisy instantaneous power sample for `class`, using the supplied
    /// RNG (Box-Muller transform; no extra dependencies).
    pub fn sample_watts<R: Rng>(&self, class: DeliveryClass, rng: &mut R) -> f64 {
        self.watts(class) + gaussian(rng) * self.noise_sigma_watts
    }
}

impl Default for PowerModel {
    fn default() -> Self {
        Self::gold6226()
    }
}

/// Standard normal sample via Box-Muller.
fn gaussian<R: Rng>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// A simulated RAPL package-energy counter.
///
/// Energy deposits accumulate continuously, but reads only observe the value
/// as of the most recent *update boundary* (every [`Rapl::UPDATE_INTERVAL_S`]),
/// reproducing the ~20 kHz quantization that limits power-channel bandwidth
/// (§VII). Reads also carry a small quantization jitter.
#[derive(Debug, Clone)]
pub struct Rapl {
    /// Energy deposited so far, microjoules (exact).
    energy_uj: f64,
    /// Energy visible at the last update boundary.
    visible_uj: f64,
    /// Time of the last update boundary, seconds.
    last_update_s: f64,
    rng: StdRng,
}

impl Rapl {
    /// RAPL update interval: 50 µs ≈ 20 kHz (paper §VII, citing PLATYPUS).
    pub const UPDATE_INTERVAL_S: f64 = 50e-6;

    /// Counter quantization in microjoules (RAPL's energy-status unit is
    /// ~61 µJ on server parts).
    pub const QUANTUM_UJ: f64 = 61.0;

    /// Creates a counter with a deterministic noise seed.
    pub fn new(seed: u64) -> Self {
        Rapl {
            energy_uj: 0.0,
            visible_uj: 0.0,
            last_update_s: 0.0,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Deposits `joules` of consumption occurring up to time `now_s`.
    ///
    /// # Panics
    ///
    /// Panics if `joules` is negative.
    pub fn deposit(&mut self, joules: f64, now_s: f64) {
        assert!(joules >= 0.0, "energy cannot decrease");
        self.energy_uj += joules * 1e6;
        self.advance(now_s);
    }

    /// Reads the counter at time `now_s`, returning quantized microjoules as
    /// the hardware MSR would.
    pub fn read(&mut self, now_s: f64) -> u64 {
        self.advance(now_s);
        (self.visible_uj / Self::QUANTUM_UJ).floor() as u64 * Self::QUANTUM_UJ as u64
    }

    /// Exact (un-quantized) energy for test assertions.
    pub fn exact_uj(&self) -> f64 {
        self.energy_uj
    }

    fn advance(&mut self, now_s: f64) {
        if now_s - self.last_update_s >= Self::UPDATE_INTERVAL_S {
            // Snap to the boundary grid; visible value catches up with a
            // ±1 quantum sampling jitter.
            let boundaries = ((now_s - self.last_update_s) / Self::UPDATE_INTERVAL_S).floor();
            self.last_update_s += boundaries * Self::UPDATE_INTERVAL_S;
            let jitter = self.rng.gen_range(-1.0..1.0) * Self::QUANTUM_UJ;
            self.visible_uj = (self.energy_uj + jitter).max(self.visible_uj);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_ordering_matches_fig9() {
        let m = PowerModel::gold6226();
        assert!(m.watts(DeliveryClass::Lsd) < m.watts(DeliveryClass::Dsb));
        assert!(m.watts(DeliveryClass::Dsb) < m.watts(DeliveryClass::Mite));
        assert!(m.watts(DeliveryClass::Idle) < m.watts(DeliveryClass::Lsd));
    }

    #[test]
    fn energy_scales_with_cycles_and_frequency() {
        let m = PowerModel::gold6226();
        let e1 = m.energy_joules(DeliveryClass::Dsb, 1e6, 1e9);
        let e2 = m.energy_joules(DeliveryClass::Dsb, 2e6, 1e9);
        let e3 = m.energy_joules(DeliveryClass::Dsb, 1e6, 2e9);
        assert!((e2 - 2.0 * e1).abs() < 1e-12);
        assert!((e3 - e1 / 2.0).abs() < 1e-12);
    }

    #[test]
    fn rapl_reads_are_monotonic() {
        let mut r = Rapl::new(1);
        let mut last = 0;
        for i in 1..100 {
            r.deposit(0.001, i as f64 * 30e-6);
            let v = r.read(i as f64 * 30e-6);
            assert!(v >= last, "RAPL went backwards at step {i}");
            last = v;
        }
    }

    #[test]
    fn reads_within_update_interval_are_stale() {
        let mut r = Rapl::new(2);
        r.deposit(0.01, 10e-6); // well within the first 50 µs window
        let v = r.read(20e-6);
        assert_eq!(v, 0, "counter must not update before the 50 µs boundary");
        let v2 = r.read(60e-6);
        assert!(v2 > 0, "counter must update after the boundary");
    }

    #[test]
    fn quantization_floor() {
        let mut r = Rapl::new(3);
        r.deposit(100e-6, 0.1); // 100 µJ
        let v = r.read(0.2);
        assert_eq!(v % Rapl::QUANTUM_UJ as u64, 0);
        assert!(v <= 161); // 100 µJ + ≤1 quantum jitter
    }

    #[test]
    fn gaussian_noise_is_centered() {
        let m = PowerModel::gold6226();
        let mut rng = StdRng::seed_from_u64(7);
        let n = 20_000;
        let mean: f64 = (0..n)
            .map(|_| m.sample_watts(DeliveryClass::Dsb, &mut rng))
            .sum::<f64>()
            / n as f64;
        assert!((mean - m.dsb_watts).abs() < 0.1, "mean {mean}");
    }

    #[test]
    #[should_panic(expected = "cannot decrease")]
    fn negative_deposit_rejected() {
        Rapl::new(0).deposit(-1.0, 0.0);
    }
}

//! `kind = "profile"` files: a full [`UarchProfile`] — key, geometry,
//! cost model and LSD switch — validated field-by-field.
//!
//! The schema is deliberately total: every [`FrontendGeometry`] and
//! [`CostModel`] field must be present, unknown keys are errors, and
//! integers never coerce to floats. A profile file therefore pins the
//! *entire* microarchitecture it names; there is no way to inherit a
//! default silently and not notice.
//!
//! [`encode_profile`] writes the same schema back out canonically —
//! float formatting is shortest-round-trip, so `parse ∘ encode` is the
//! identity bit-for-bit (pinned by proptest), and the committed
//! `scenarios/{skylake,icelake,constant_time}.toml` are byte-identical
//! to `encode_profile` of the built-ins.

use std::fmt::Write as _;
use std::path::Path;

use leaky_isa::FrontendGeometry;
use leaky_uarch::{CostModel, UarchProfile};

use crate::toml::{is_bare_key, Doc, Table, Value};
use crate::{leak, ScenarioError, SCENARIO_SCHEMA};

/// Every [`FrontendGeometry`] field, in declaration order — drives both
/// validation and [`encode_profile`], so the two cannot drift.
pub const GEOMETRY_KEYS: [&str; 12] = [
    "dsb_sets",
    "dsb_ways",
    "dsb_window_bytes",
    "dsb_line_uops",
    "lsd_uops",
    "lsd_windows",
    "l1i_sets",
    "l1i_ways",
    "l1i_line_bytes",
    "iq_entries",
    "decode_width",
    "idq_delivery_width",
];

/// Every [`CostModel`] field, in declaration order.
pub const COST_KEYS: [&str; 17] = [
    "dsb_per_uop",
    "lsd_per_uop",
    "mite_line_base",
    "mite_per_uop",
    "dsb_to_mite_switch",
    "mite_to_dsb_switch",
    "lsd_flush",
    "lcp_stall",
    "lcp_sequential_extra",
    "mite_per_instr",
    "lcp_dsb_to_mite_switch",
    "lcp_mite_to_dsb_switch",
    "window_crossing_penalty",
    "l1i_miss",
    "loop_overhead",
    "smt_mite_factor",
    "timer_overhead",
];

fn set_geometry(g: &mut FrontendGeometry, key: &str, v: usize) -> bool {
    match key {
        "dsb_sets" => g.dsb_sets = v,
        "dsb_ways" => g.dsb_ways = v,
        "dsb_window_bytes" => g.dsb_window_bytes = v,
        "dsb_line_uops" => g.dsb_line_uops = v,
        "lsd_uops" => g.lsd_uops = v,
        "lsd_windows" => g.lsd_windows = v,
        "l1i_sets" => g.l1i_sets = v,
        "l1i_ways" => g.l1i_ways = v,
        "l1i_line_bytes" => g.l1i_line_bytes = v,
        "iq_entries" => g.iq_entries = v,
        "decode_width" => g.decode_width = v,
        "idq_delivery_width" => g.idq_delivery_width = v,
        _ => return false,
    }
    true
}

fn geometry_value(g: &FrontendGeometry, key: &str) -> usize {
    match key {
        "dsb_sets" => g.dsb_sets,
        "dsb_ways" => g.dsb_ways,
        "dsb_window_bytes" => g.dsb_window_bytes,
        "dsb_line_uops" => g.dsb_line_uops,
        "lsd_uops" => g.lsd_uops,
        "lsd_windows" => g.lsd_windows,
        "l1i_sets" => g.l1i_sets,
        "l1i_ways" => g.l1i_ways,
        "l1i_line_bytes" => g.l1i_line_bytes,
        "iq_entries" => g.iq_entries,
        "decode_width" => g.decode_width,
        "idq_delivery_width" => g.idq_delivery_width,
        other => panic!("not a geometry key: {other}"), // lint: allow(panic-path) — callers iterate GEOMETRY_KEYS
    }
}

fn set_cost(c: &mut CostModel, key: &str, v: f64) -> bool {
    match key {
        "dsb_per_uop" => c.dsb_per_uop = v,
        "lsd_per_uop" => c.lsd_per_uop = v,
        "mite_line_base" => c.mite_line_base = v,
        "mite_per_uop" => c.mite_per_uop = v,
        "dsb_to_mite_switch" => c.dsb_to_mite_switch = v,
        "mite_to_dsb_switch" => c.mite_to_dsb_switch = v,
        "lsd_flush" => c.lsd_flush = v,
        "lcp_stall" => c.lcp_stall = v,
        "lcp_sequential_extra" => c.lcp_sequential_extra = v,
        "mite_per_instr" => c.mite_per_instr = v,
        "lcp_dsb_to_mite_switch" => c.lcp_dsb_to_mite_switch = v,
        "lcp_mite_to_dsb_switch" => c.lcp_mite_to_dsb_switch = v,
        "window_crossing_penalty" => c.window_crossing_penalty = v,
        "l1i_miss" => c.l1i_miss = v,
        "loop_overhead" => c.loop_overhead = v,
        "smt_mite_factor" => c.smt_mite_factor = v,
        "timer_overhead" => c.timer_overhead = v,
        _ => return false,
    }
    true
}

fn cost_value(c: &CostModel, key: &str) -> f64 {
    match key {
        "dsb_per_uop" => c.dsb_per_uop,
        "lsd_per_uop" => c.lsd_per_uop,
        "mite_line_base" => c.mite_line_base,
        "mite_per_uop" => c.mite_per_uop,
        "dsb_to_mite_switch" => c.dsb_to_mite_switch,
        "mite_to_dsb_switch" => c.mite_to_dsb_switch,
        "lsd_flush" => c.lsd_flush,
        "lcp_stall" => c.lcp_stall,
        "lcp_sequential_extra" => c.lcp_sequential_extra,
        "mite_per_instr" => c.mite_per_instr,
        "lcp_dsb_to_mite_switch" => c.lcp_dsb_to_mite_switch,
        "lcp_mite_to_dsb_switch" => c.lcp_mite_to_dsb_switch,
        "window_crossing_penalty" => c.window_crossing_penalty,
        "l1i_miss" => c.l1i_miss,
        "loop_overhead" => c.loop_overhead,
        "smt_mite_factor" => c.smt_mite_factor,
        "timer_overhead" => c.timer_overhead,
        other => panic!("not a cost key: {other}"), // lint: allow(panic-path) — callers iterate COST_KEYS
    }
}

/// Validates the top-level `schema`/`kind` header and returns the file's
/// kind (`"profile"` or `"scenario"`).
pub fn document_kind(doc: &Doc) -> Result<&str, ScenarioError> {
    for e in &doc.root.entries {
        if e.key != "schema" && e.key != "kind" {
            return Err(ScenarioError::at(
                e.line,
                format!("unknown top-level key `{}`", e.key),
            ));
        }
    }
    let Some(schema) = doc.root.get("schema") else {
        return Err(ScenarioError::doc("missing top-level `schema` key"));
    };
    match &schema.value {
        Value::Str(s) if s == SCENARIO_SCHEMA => {}
        Value::Str(s) => {
            return Err(ScenarioError::at(
                schema.line,
                format!("schema must be \"{SCENARIO_SCHEMA}\", got \"{s}\""),
            ));
        }
        other => {
            return Err(ScenarioError::at(
                schema.line,
                format!("key `schema`: expected string, got {}", other.type_name()),
            ));
        }
    }
    let Some(kind) = doc.root.get("kind") else {
        return Err(ScenarioError::doc("missing top-level `kind` key"));
    };
    match &kind.value {
        Value::Str(s) if s == "profile" || s == "scenario" => Ok(s),
        Value::Str(s) => Err(ScenarioError::at(
            kind.line,
            format!("kind must be \"profile\" or \"scenario\", got \"{s}\""),
        )),
        other => Err(ScenarioError::at(
            kind.line,
            format!("key `kind`: expected string, got {}", other.type_name()),
        )),
    }
}

/// Checks the header names the expected kind.
fn expect_kind(doc: &Doc, expected: &str) -> Result<(), ScenarioError> {
    let kind = document_kind(doc)?;
    if kind != expected {
        return Err(ScenarioError::doc(format!(
            "expected a {expected} file, got kind = \"{kind}\""
        )));
    }
    Ok(())
}

/// Rejects tables outside `allowed` and requires every one in
/// `required`.
pub(crate) fn check_tables(
    doc: &Doc,
    allowed: &[&str],
    required: &[&str],
) -> Result<(), ScenarioError> {
    for t in &doc.tables {
        if !allowed.contains(&t.name.as_str()) {
            return Err(ScenarioError::at(
                t.line,
                format!("unknown table [{}]", t.name),
            ));
        }
    }
    for name in required {
        if doc.table(name).is_none() {
            return Err(ScenarioError::doc(format!("missing table [{name}]")));
        }
    }
    Ok(())
}

/// Typed getter: a required string key.
pub(crate) fn get_str<'t>(t: &'t Table, key: &str) -> Result<&'t str, ScenarioError> {
    match t.get(key) {
        Some(e) => match &e.value {
            Value::Str(s) => Ok(s),
            other => Err(ScenarioError::at(
                e.line,
                format!(
                    "key `{key}` in [{}]: expected string, got {}",
                    t.name,
                    other.type_name()
                ),
            )),
        },
        None => Err(ScenarioError::at(
            t.line,
            format!("missing key `{key}` in [{}]", t.name),
        )),
    }
}

/// Typed getter: a required boolean key.
pub(crate) fn get_bool(t: &Table, key: &str) -> Result<bool, ScenarioError> {
    match t.get(key) {
        Some(e) => match e.value {
            Value::Bool(b) => Ok(b),
            ref other => Err(ScenarioError::at(
                e.line,
                format!(
                    "key `{key}` in [{}]: expected boolean, got {}",
                    t.name,
                    other.type_name()
                ),
            )),
        },
        None => Err(ScenarioError::at(
            t.line,
            format!("missing key `{key}` in [{}]", t.name),
        )),
    }
}

/// Typed getter: a required non-negative integer key.
pub(crate) fn get_uint(t: &Table, key: &str) -> Result<u64, ScenarioError> {
    match t.get(key) {
        Some(e) => match e.value {
            Value::Int(v) if v >= 0 => Ok(v as u64),
            Value::Int(_) => Err(ScenarioError::at(
                e.line,
                format!("key `{key}` in [{}]: must be non-negative", t.name),
            )),
            ref other => Err(ScenarioError::at(
                e.line,
                format!(
                    "key `{key}` in [{}]: expected integer, got {}",
                    t.name,
                    other.type_name()
                ),
            )),
        },
        None => Err(ScenarioError::at(
            t.line,
            format!("missing key `{key}` in [{}]", t.name),
        )),
    }
}

/// Parses a profile file body into a [`UarchProfile`].
///
/// Every geometry and cost field must be present with the right type;
/// unknown keys and unknown tables are errors with stable messages (the
/// malformed-file corpus pins them).
pub fn parse_profile(text: &str) -> Result<UarchProfile, ScenarioError> {
    let doc = Doc::parse(text)?;
    expect_kind(&doc, "profile")?;
    check_tables(
        &doc,
        &["profile", "geometry", "costs"],
        &["profile", "geometry", "costs"],
    )?;

    let meta = doc.table("profile").expect("required above"); // lint: allow(panic-path) — check_tables guarantees presence
    for e in &meta.entries {
        if !matches!(e.key.as_str(), "key" | "description" | "lsd_enabled") {
            return Err(ScenarioError::at(
                e.line,
                format!("unknown key `{}` in [profile]", e.key),
            ));
        }
    }
    let key = get_str(meta, "key")?;
    if !is_bare_key(key) {
        return Err(ScenarioError::at(
            meta.get("key").expect("just read").line, // lint: allow(panic-path) — key was read above
            format!("profile key `{key}` must contain only [A-Za-z0-9_-]"),
        ));
    }
    let description = get_str(meta, "description")?.to_string();
    let lsd_enabled = get_bool(meta, "lsd_enabled")?;

    let gt = doc.table("geometry").expect("required above"); // lint: allow(panic-path) — check_tables guarantees presence
    let mut geometry = FrontendGeometry::skylake();
    for e in &gt.entries {
        let v = match e.value {
            Value::Int(v) if v > 0 => v as usize,
            Value::Int(_) => {
                return Err(ScenarioError::at(
                    e.line,
                    format!("key `{}` in [geometry]: must be a positive integer", e.key),
                ));
            }
            ref other => {
                return Err(ScenarioError::at(
                    e.line,
                    format!(
                        "key `{}` in [geometry]: expected integer, got {}",
                        e.key,
                        other.type_name()
                    ),
                ));
            }
        };
        if !set_geometry(&mut geometry, &e.key, v) {
            return Err(ScenarioError::at(
                e.line,
                format!("unknown key `{}` in [geometry]", e.key),
            ));
        }
    }
    for key in GEOMETRY_KEYS {
        if gt.get(key).is_none() {
            return Err(ScenarioError::at(
                gt.line,
                format!("missing key `{key}` in [geometry]"),
            ));
        }
    }

    let ct = doc.table("costs").expect("required above"); // lint: allow(panic-path) — check_tables guarantees presence
    let mut costs = CostModel::skylake();
    for e in &ct.entries {
        let v = match e.value {
            Value::Float(v) if v >= 0.0 => v,
            Value::Float(_) => {
                return Err(ScenarioError::at(
                    e.line,
                    format!("key `{}` in [costs]: must be non-negative", e.key),
                ));
            }
            Value::Int(_) => {
                return Err(ScenarioError::at(
                    e.line,
                    format!(
                        "key `{}` in [costs]: expected float, got integer (write `4` as `4.0`)",
                        e.key
                    ),
                ));
            }
            ref other => {
                return Err(ScenarioError::at(
                    e.line,
                    format!(
                        "key `{}` in [costs]: expected float, got {}",
                        e.key,
                        other.type_name()
                    ),
                ));
            }
        };
        if !set_cost(&mut costs, &e.key, v) {
            return Err(ScenarioError::at(
                e.line,
                format!("unknown key `{}` in [costs]", e.key),
            ));
        }
    }
    for key in COST_KEYS {
        if ct.get(key).is_none() {
            return Err(ScenarioError::at(
                ct.line,
                format!("missing key `{key}` in [costs]"),
            ));
        }
    }

    Ok(UarchProfile {
        key: leak(key.to_string()),
        description: leak(description),
        geometry,
        costs,
        lsd_enabled,
    })
}

/// Formats a float so it parses back bit-identically *as a float*:
/// shortest round-trip decimal, with `.0` forced onto integral values so
/// the token keeps a decimal point.
fn fmt_float(v: f64) -> String {
    if v == v.trunc() {
        format!("{v:.1}")
    } else {
        format!("{v}")
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Writes a profile back out in the canonical file layout.
/// `parse_profile(&encode_profile(p))` reproduces `p` exactly (proptest
/// pins this), and the committed legacy profile files are byte-identical
/// to the encodings of the built-ins.
pub fn encode_profile(p: &UarchProfile) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "schema = \"{SCENARIO_SCHEMA}\"");
    let _ = writeln!(out, "kind = \"profile\"");
    let _ = writeln!(out);
    let _ = writeln!(out, "[profile]");
    let _ = writeln!(out, "key = \"{}\"", escape(p.key));
    let _ = writeln!(out, "description = \"{}\"", escape(p.description));
    let _ = writeln!(out, "lsd_enabled = {}", p.lsd_enabled);
    let _ = writeln!(out);
    let _ = writeln!(out, "[geometry]");
    for key in GEOMETRY_KEYS {
        let _ = writeln!(out, "{key} = {}", geometry_value(&p.geometry, key));
    }
    let _ = writeln!(out);
    let _ = writeln!(out, "[costs]");
    for key in COST_KEYS {
        let _ = writeln!(out, "{key} = {}", fmt_float(cost_value(&p.costs, key)));
    }
    out
}

/// `UarchProfile::from_file` — the extension that loads a profile file
/// from disk (inherent methods cannot be added outside `leaky_uarch`,
/// and the parser lives here).
pub trait ProfileFileExt: Sized {
    /// Loads and validates a `kind = "profile"` scenario file.
    fn from_file(path: impl AsRef<Path>) -> Result<Self, ScenarioError>;
}

impl ProfileFileExt for UarchProfile {
    fn from_file(path: impl AsRef<Path>) -> Result<Self, ScenarioError> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path)
            .map_err(|e| ScenarioError::doc(format!("{}: {e}", path.display())))?;
        parse_profile(&text).map_err(|e| e.in_file(path))
    }
}

/// The string-keyed profile registry: compiled-in profiles merged with
/// directory-loaded ones, in deterministic order (built-ins first, then
/// files sorted by name).
#[derive(Debug, Clone)]
pub struct ProfileRegistry {
    entries: Vec<UarchProfile>,
}

impl ProfileRegistry {
    /// A registry holding exactly the compiled-in profiles
    /// ([`UarchProfile::all`]).
    pub fn builtins() -> Self {
        ProfileRegistry {
            entries: UarchProfile::all().to_vec(),
        }
    }

    /// An empty registry (for tests that want file-only resolution).
    pub fn empty() -> Self {
        ProfileRegistry {
            entries: Vec::new(),
        }
    }

    /// Adds a profile. Re-registering a key with *identical* contents
    /// replaces the existing entry (so a file restating a built-in is
    /// legal and the file copy is the one served — the byte-identity
    /// tests rely on this); a key collision with different contents is
    /// an error.
    pub fn add(&mut self, p: UarchProfile) -> Result<(), ScenarioError> {
        if let Some(existing) = self.entries.iter_mut().find(|e| e.key == p.key) {
            if existing.fingerprint() != p.fingerprint() {
                return Err(ScenarioError::doc(format!(
                    "profile `{}` is already registered with different contents",
                    p.key
                )));
            }
            *existing = p;
            return Ok(());
        }
        self.entries.push(p);
        Ok(())
    }

    /// Loads every `kind = "profile"` `.toml` file in `dir` (sorted by
    /// file name; `kind = "scenario"` bundles in the same directory are
    /// skipped). Returns how many profiles were loaded.
    pub fn load_dir(&mut self, dir: impl AsRef<Path>) -> Result<usize, ScenarioError> {
        let dir = dir.as_ref();
        let entries = std::fs::read_dir(dir)
            .map_err(|e| ScenarioError::doc(format!("{}: {e}", dir.display())))?;
        let mut paths: Vec<_> = entries
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|x| x == "toml"))
            .collect();
        paths.sort();
        let mut loaded = 0;
        for path in paths {
            let text = std::fs::read_to_string(&path)
                .map_err(|e| ScenarioError::doc(format!("{}: {e}", path.display())))?;
            let doc = Doc::parse(&text).map_err(|e| e.in_file(&path))?;
            if document_kind(&doc).map_err(|e| e.in_file(&path))? != "profile" {
                continue;
            }
            let profile = parse_profile(&text).map_err(|e| e.in_file(&path))?;
            self.add(profile).map_err(|e| e.in_file(&path))?;
            loaded += 1;
        }
        Ok(loaded)
    }

    /// Looks a profile up by key.
    pub fn get(&self, key: &str) -> Option<UarchProfile> {
        self.entries.iter().find(|p| p.key == key).copied()
    }

    /// Registered keys, in registration order.
    pub fn keys(&self) -> Vec<&'static str> {
        self.entries.iter().map(|p| p.key).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_profiles_round_trip_through_the_codec() {
        for builtin in UarchProfile::all() {
            let text = encode_profile(&builtin);
            let parsed = parse_profile(&text).expect("canonical encoding parses");
            assert_eq!(parsed.key, builtin.key);
            assert_eq!(parsed.description, builtin.description);
            assert_eq!(parsed.geometry, builtin.geometry);
            assert_eq!(parsed.costs, builtin.costs);
            assert_eq!(parsed.lsd_enabled, builtin.lsd_enabled);
            assert_eq!(parsed.fingerprint(), builtin.fingerprint());
        }
    }

    #[test]
    fn registry_merges_and_rejects_conflicts() {
        let mut reg = ProfileRegistry::builtins();
        assert_eq!(reg.keys(), vec!["skylake", "icelake", "constant_time"]);

        // Identical restatement of a built-in: accepted, replaces.
        let restated = parse_profile(&encode_profile(&UarchProfile::skylake())).unwrap();
        reg.add(restated).expect("identical restatement is legal");
        assert_eq!(reg.keys().len(), 3);

        // Same key, different contents: rejected.
        let mut forked = UarchProfile::skylake();
        forked.costs.dsb_per_uop = 0.5;
        let err = reg.add(forked).unwrap_err();
        assert_eq!(
            err.to_string(),
            "profile `skylake` is already registered with different contents"
        );

        // New key: appended.
        let mut fresh = UarchProfile::icelake();
        fresh.key = "icelake_v2";
        reg.add(fresh).expect("new key");
        assert_eq!(reg.get("icelake_v2").unwrap().key, "icelake_v2");
    }

    #[test]
    fn float_formatting_keeps_the_decimal_point() {
        assert_eq!(fmt_float(4.0), "4.0");
        assert_eq!(fmt_float(0.18), "0.18");
        assert_eq!(fmt_float(0.0), "0.0");
    }
}

//! `leaky_scenario` — data-driven microarchitecture profiles and
//! scenario bundles (DESIGN.md §13).
//!
//! The paper's cross-microarchitecture results historically lived in
//! exactly three hardcoded [`UarchProfile`](leaky_uarch::UarchProfile)s
//! and code-only sweep specs. This crate turns both registries into
//! *data*: versioned `leaky-frontends/scenario/v1` files that users
//! write, commit and run without recompiling.
//!
//! * [`toml`] is a hand-rolled, comment-aware TOML-subset parser — the
//!   workspace builds with no crates.io access, so the grammar is scoped
//!   to exactly what scenario files need (tables, strings, integers,
//!   floats, booleans, arrays) and rejects everything else with
//!   line-numbered errors.
//! * [`profile`] maps `kind = "profile"` files onto
//!   [`UarchProfile`](leaky_uarch::UarchProfile), validated
//!   field-by-field against `FrontendGeometry`/`CostModel`: a missing or
//!   unknown key is an error, never a silent default. The string-keyed
//!   [`ProfileRegistry`] merges the compiled-in profiles with a
//!   directory of files.
//! * [`bundle`] maps `kind = "scenario"` files — channel × profile ×
//!   params grid axes plus message, workload and optional noise tables —
//!   onto a [`ParamGrid`](leaky_exp::ParamGrid)-backed
//!   [`Experiment`](leaky_exp::Experiment), so loaded bundles run
//!   through the standard sweep runner with content keys derived from
//!   the loaded values: store, resume and telemetry work unchanged.
//!
//! The committed `scenarios/` library at the repository root holds the
//! three legacy profiles re-expressed as files (byte-identity with the
//! built-ins is pinned by tests), three new profiles (`goldencove`,
//! `efficiency_core`, `riscv_c920`) and runnable bundles;
//! `leaky_sweep --scenario FILE` is the CLI entry point.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod bundle;
pub mod profile;
pub mod toml;

pub use bundle::{load_bundle, parse_bundle, ScenarioBundle};
pub use profile::{encode_profile, parse_profile, ProfileFileExt, ProfileRegistry};

use std::fmt;

/// Schema tag every scenario file must declare in its top-level
/// `schema` key. One shared constant so the loader, the committed
/// `scenarios/` library and the docs cannot drift.
pub const SCENARIO_SCHEMA: &str = "leaky-frontends/scenario/v1";

/// An error from parsing or validating a scenario file.
///
/// Carries the 1-based line number when the error is anchored to a
/// specific line (`0` for document-level errors such as a missing
/// table). Messages are stable — the malformed-file corpus tests pin
/// them — so downstream tooling can match on them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioError {
    /// 1-based line the error is anchored to; 0 for document-level
    /// errors.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl ScenarioError {
    /// An error anchored to a line.
    pub fn at(line: usize, message: impl Into<String>) -> Self {
        ScenarioError {
            line,
            message: message.into(),
        }
    }

    /// A document-level error (no line anchor).
    pub fn doc(message: impl Into<String>) -> Self {
        Self::at(0, message)
    }

    /// Prefixes the rendered error with a file path, for callers that
    /// read from disk.
    pub fn in_file(self, path: &std::path::Path) -> Self {
        ScenarioError::doc(format!("{}: {self}", path.display()))
    }
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line > 0 {
            write!(f, "line {}: {}", self.line, self.message)
        } else {
            f.write_str(&self.message)
        }
    }
}

impl std::error::Error for ScenarioError {}

/// Interns a loaded string for APIs that want `&'static str`
/// ([`Experiment::name`](leaky_exp::Experiment::name), profile keys).
/// Scenario files are loaded once per process, so the leak is bounded
/// by the file contents.
pub(crate) fn leak(s: String) -> &'static str {
    Box::leak(s.into_boxed_str())
}

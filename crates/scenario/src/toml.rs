//! The hand-rolled, comment-aware TOML-subset parser behind scenario
//! files.
//!
//! Supported grammar: full-line and trailing `#` comments, `[table]`
//! headers, `key = value` pairs with string / integer / float / boolean
//! / array values, and arrays spanning multiple lines. Deliberately
//! *not* supported (and rejected with an error): dotted or nested
//! tables, inline tables, dates, and multi-line strings — scenario
//! files need none of them, and a small grammar keeps every error exact
//! and line-numbered.

use crate::ScenarioError;

/// A parsed value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A `"..."` string (escapes `\"` and `\\` only).
    Str(String),
    /// An integer (optional `_` separators).
    Int(i64),
    /// A float — the token must contain `.`, `e` or `E`, so `4` and
    /// `4.0` stay distinct types.
    Float(f64),
    /// `true` / `false`.
    Bool(bool),
    /// A `[a, b, c]` array (possibly spanning lines).
    Array(Vec<Value>),
}

impl Value {
    /// The type label used in error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Str(_) => "string",
            Value::Int(_) => "integer",
            Value::Float(_) => "float",
            Value::Bool(_) => "boolean",
            Value::Array(_) => "array",
        }
    }
}

/// One `key = value` pair with its source line.
#[derive(Debug, Clone, PartialEq)]
pub struct Entry {
    /// The bare key.
    pub key: String,
    /// 1-based source line of the pair.
    pub line: usize,
    /// The parsed value.
    pub value: Value,
}

/// One `[name]` table — or the implicit root table (`name` empty) that
/// holds keys appearing before any header. Entries keep file order, so
/// schema lowering can honor the author's axis order.
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    /// Table name (empty for the root table).
    pub name: String,
    /// 1-based line of the `[name]` header (0 for the root table).
    pub line: usize,
    /// Key/value pairs in file order.
    pub entries: Vec<Entry>,
}

impl Table {
    /// Looks up a key.
    pub fn get(&self, key: &str) -> Option<&Entry> {
        self.entries.iter().find(|e| e.key == key)
    }

    /// Where this table is, for error messages: `at top level` or
    /// `in [name]`.
    pub fn place(&self) -> String {
        if self.name.is_empty() {
            "at top level".to_string()
        } else {
            format!("in [{}]", self.name)
        }
    }
}

/// A parsed document: the root table plus the `[name]` tables in file
/// order.
#[derive(Debug, Clone, PartialEq)]
pub struct Doc {
    /// Keys appearing before any `[table]` header.
    pub root: Table,
    /// The named tables, in file order.
    pub tables: Vec<Table>,
}

impl Doc {
    /// Parses a document, rejecting duplicate tables and duplicate keys.
    pub fn parse(text: &str) -> Result<Doc, ScenarioError> {
        let mut root = Table {
            name: String::new(),
            line: 0,
            entries: Vec::new(),
        };
        let mut tables: Vec<Table> = Vec::new();
        let mut in_root = true;
        let mut lines = text.lines().enumerate();
        while let Some((idx, raw)) = lines.next() {
            let n = idx + 1;
            let line = strip_comment(raw).trim();
            if line.is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix('[') {
                let Some(name) = rest.strip_suffix(']').map(str::trim) else {
                    return Err(ScenarioError::at(n, "table header must be `[name]`"));
                };
                if !is_bare_key(name) {
                    return Err(ScenarioError::at(n, format!("invalid table name `{name}`")));
                }
                if tables.iter().any(|t| t.name == name) {
                    return Err(ScenarioError::at(n, format!("duplicate table [{name}]")));
                }
                tables.push(Table {
                    name: name.to_string(),
                    line: n,
                    entries: Vec::new(),
                });
                in_root = false;
                continue;
            }
            let Some((k, v)) = line.split_once('=') else {
                return Err(ScenarioError::at(
                    n,
                    format!("expected `key = value` or `[table]`, got `{line}`"),
                ));
            };
            let key = k.trim();
            if !is_bare_key(key) {
                return Err(ScenarioError::at(n, format!("invalid key `{key}`")));
            }
            let mut vtext = v.trim().to_string();
            // A value whose brackets have not closed continues on the
            // following lines (multi-line arrays).
            while bracket_depth(&vtext) > 0 {
                let Some((_, next)) = lines.next() else {
                    return Err(ScenarioError::at(
                        n,
                        format!("unterminated array for key `{key}`"),
                    ));
                };
                vtext.push(' ');
                vtext.push_str(strip_comment(next).trim());
            }
            let value = parse_value(vtext.trim(), n)?;
            let table = if in_root {
                &mut root
            } else {
                // In_root is false only after a header pushed a table.
                tables.last_mut().expect("a table header was seen") // lint: allow(panic-path) — guarded by in_root
            };
            if table.get(key).is_some() {
                return Err(ScenarioError::at(
                    n,
                    format!("duplicate key `{key}` {}", table.place()),
                ));
            }
            table.entries.push(Entry {
                key: key.to_string(),
                line: n,
                value,
            });
        }
        Ok(Doc { root, tables })
    }

    /// Looks up a named table.
    pub fn table(&self, name: &str) -> Option<&Table> {
        self.tables.iter().find(|t| t.name == name)
    }
}

/// Whether `s` is a bare key: nonempty, only `[A-Za-z0-9_-]`.
pub fn is_bare_key(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
}

/// Cuts a trailing `#` comment, honoring `#` inside strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        if escaped {
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_str => escaped = true,
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

/// Net `[`/`]` nesting of `s`, ignoring brackets inside strings.
fn bracket_depth(s: &str) -> i32 {
    let mut depth = 0;
    let mut in_str = false;
    let mut escaped = false;
    for c in s.chars() {
        if escaped {
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_str => escaped = true,
            '"' => in_str = !in_str,
            '[' if !in_str => depth += 1,
            ']' if !in_str => depth -= 1,
            _ => {}
        }
    }
    depth
}

/// Parses one value token (already comment-stripped and trimmed).
fn parse_value(s: &str, line: usize) -> Result<Value, ScenarioError> {
    if s.starts_with('"') {
        let (v, rest) = parse_string(s, line)?;
        if !rest.trim().is_empty() {
            return Err(ScenarioError::at(
                line,
                format!("trailing characters after string: `{}`", rest.trim()),
            ));
        }
        return Ok(Value::Str(v));
    }
    if s == "true" {
        return Ok(Value::Bool(true));
    }
    if s == "false" {
        return Ok(Value::Bool(false));
    }
    if let Some(body) = s.strip_prefix('[') {
        let Some(body) = body.strip_suffix(']') else {
            return Err(ScenarioError::at(line, "unterminated array"));
        };
        let mut items = Vec::new();
        for part in split_top_level(body) {
            let part = part.trim();
            if part.is_empty() {
                continue; // trailing comma
            }
            items.push(parse_value(part, line)?);
        }
        return Ok(Value::Array(items));
    }
    let plain = s.replace('_', "");
    if let Ok(v) = plain.parse::<i64>() {
        return Ok(Value::Int(v));
    }
    if s.contains(['.', 'e', 'E']) {
        if let Ok(v) = plain.parse::<f64>() {
            if v.is_finite() {
                return Ok(Value::Float(v));
            }
        }
    }
    Err(ScenarioError::at(line, format!("cannot parse value `{s}`")))
}

/// Parses a leading `"..."` string, returning it and the remainder.
fn parse_string(s: &str, line: usize) -> Result<(String, &str), ScenarioError> {
    let mut out = String::new();
    let mut chars = s.char_indices().skip(1); // opening quote
    while let Some((_, c)) = chars.next() {
        match c {
            '\\' => match chars.next() {
                Some((_, '"')) => out.push('"'),
                Some((_, '\\')) => out.push('\\'),
                other => {
                    let what = other.map(|(_, c)| c).unwrap_or(' ');
                    return Err(ScenarioError::at(
                        line,
                        format!("unsupported escape `\\{what}` (only \\\" and \\\\)"),
                    ));
                }
            },
            '"' => {
                let consumed = chars.next().map(|(i, _)| i).unwrap_or(s.len());
                return Ok((out, &s[consumed..]));
            }
            c => out.push(c),
        }
    }
    Err(ScenarioError::at(line, "unterminated string"))
}

/// Splits an array body at top-level commas (outside strings and nested
/// brackets).
fn split_top_level(s: &str) -> Vec<&str> {
    let mut parts = Vec::new();
    let mut start = 0;
    let mut depth = 0;
    let mut in_str = false;
    let mut escaped = false;
    for (i, c) in s.char_indices() {
        if escaped {
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_str => escaped = true,
            '"' => in_str = !in_str,
            '[' if !in_str => depth += 1,
            ']' if !in_str => depth -= 1,
            ',' if !in_str && depth == 0 => {
                parts.push(&s[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    parts.push(&s[start..]);
    parts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_all_value_types_with_comments() {
        let doc = Doc::parse(concat!(
            "# header comment\n",
            "schema = \"v1\" # trailing\n",
            "\n",
            "[table]\n",
            "s = \"a # not a comment\"\n",
            "i = 240_000\n",
            "f = 0.18\n",
            "b = true\n",
            "a = [\"x\", \"y\"]\n",
            "multi = [\n",
            "    1, # one\n",
            "    2,\n",
            "]\n",
        ))
        .expect("valid document");
        assert_eq!(
            doc.root.get("schema").unwrap().value,
            Value::Str("v1".into())
        );
        let t = doc.table("table").expect("table present");
        assert_eq!(
            t.get("s").unwrap().value,
            Value::Str("a # not a comment".into())
        );
        assert_eq!(t.get("i").unwrap().value, Value::Int(240_000));
        assert_eq!(t.get("f").unwrap().value, Value::Float(0.18));
        assert_eq!(t.get("b").unwrap().value, Value::Bool(true));
        assert_eq!(
            t.get("a").unwrap().value,
            Value::Array(vec![Value::Str("x".into()), Value::Str("y".into())])
        );
        assert_eq!(
            t.get("multi").unwrap().value,
            Value::Array(vec![Value::Int(1), Value::Int(2)])
        );
    }

    #[test]
    fn ints_and_floats_stay_distinct_types() {
        let doc = Doc::parse("i = 4\nf = 4.0\ne = 1e3\n").expect("valid");
        assert_eq!(doc.root.get("i").unwrap().value, Value::Int(4));
        assert_eq!(doc.root.get("f").unwrap().value, Value::Float(4.0));
        assert_eq!(doc.root.get("e").unwrap().value, Value::Float(1000.0));
    }

    #[test]
    fn duplicate_tables_and_keys_are_rejected_with_lines() {
        let err = Doc::parse("[a]\nx = 1\n[a]\n").unwrap_err();
        assert_eq!(err.to_string(), "line 3: duplicate table [a]");
        let err = Doc::parse("[a]\nx = 1\nx = 2\n").unwrap_err();
        assert_eq!(err.to_string(), "line 3: duplicate key `x` in [a]");
        let err = Doc::parse("x = 1\nx = 2\n").unwrap_err();
        assert_eq!(err.to_string(), "line 2: duplicate key `x` at top level");
    }

    #[test]
    fn malformed_lines_are_rejected_with_lines() {
        assert_eq!(
            Doc::parse("[a\n").unwrap_err().to_string(),
            "line 1: table header must be `[name]`"
        );
        assert_eq!(
            Doc::parse("just words\n").unwrap_err().to_string(),
            "line 1: expected `key = value` or `[table]`, got `just words`"
        );
        assert_eq!(
            Doc::parse("x = \"open\n").unwrap_err().to_string(),
            "line 1: unterminated string"
        );
        assert_eq!(
            Doc::parse("x = [1, 2\n").unwrap_err().to_string(),
            "line 1: unterminated array for key `x`"
        );
        assert_eq!(
            Doc::parse("x = nope\n").unwrap_err().to_string(),
            "line 1: cannot parse value `nope`"
        );
        assert_eq!(
            Doc::parse("x = \"a\" b\n").unwrap_err().to_string(),
            "line 1: trailing characters after string: `b`"
        );
    }

    #[test]
    fn string_escapes_round_trip() {
        let doc = Doc::parse("x = \"say \\\"hi\\\" \\\\ done\"\n").expect("valid");
        assert_eq!(
            doc.root.get("x").unwrap().value,
            Value::Str("say \"hi\" \\ done".into())
        );
        assert!(Doc::parse("x = \"bad \\n escape\"\n").is_err());
    }
}

//! `kind = "scenario"` files: a sweep bundle — grid axes (uarch ×
//! channel × machine × optional d / pattern), message, workload sizes
//! and optional MT noise — validated against the channel registry and
//! the caller's [`ProfileRegistry`], then lowered onto a
//! [`ParamGrid`]-backed [`Experiment`].
//!
//! The lowering mirrors the compiled-in `tab3_uarch` spec exactly: the
//! same `profile` quick/full axis first, the same axis ordering as the
//! file, the same [`channel_cell_traced`] measurement path, and content
//! keys derived from the loaded axis values — so a bundle restating a
//! compiled-in sweep produces byte-identical output (pinned by the
//! `scenarios/tab3_uarch.toml` golden test), and the store / resume /
//! telemetry machinery works on loaded bundles unchanged.

use std::path::Path;

use leaky_cpu::ProcessorModel;
use leaky_exp::experiments::{channel_cell_traced, machine};
use leaky_exp::{CellMeasurement, Experiment, JobCell, ParamGrid};
use leaky_frontends::channels::mt::MtNoise;
use leaky_frontends::channels::registry::default_params;
use leaky_frontends::channels::{channel_info, ChannelSpec};
use leaky_frontends::params::MessagePattern;
use leaky_trace::TraceMode;
use leaky_uarch::UarchProfile;

use crate::profile::{check_tables, document_kind, get_str, get_uint, ProfileRegistry};
use crate::toml::{is_bare_key, Doc, Entry, Table, Value};
use crate::{leak, ScenarioError};

/// Axis names a `[grid]` table may declare, in the error message's
/// order.
const AXES: [&str; 5] = ["uarch", "channel", "machine", "d", "pattern"];

/// Axes every bundle must declare.
const REQUIRED_AXES: [&str; 3] = ["uarch", "channel", "machine"];

/// One grid axis loaded from a bundle file, in file order.
#[derive(Debug, Clone)]
enum AxisValues {
    /// Categorical coordinates (`uarch`, `channel`, `machine`,
    /// `pattern`).
    Strs(Vec<String>),
    /// Integer coordinates (`d`).
    Ints(Vec<i64>),
}

impl AxisValues {
    fn len(&self) -> usize {
        match self {
            AxisValues::Strs(v) => v.len(),
            AxisValues::Ints(v) => v.len(),
        }
    }
}

/// A parsed, fully validated scenario bundle, ready to lower onto an
/// [`Experiment`] with [`ScenarioBundle::into_experiment`].
#[derive(Debug, Clone)]
pub struct ScenarioBundle {
    /// Registry/sweep name (`[scenario] name`; also the content-key
    /// prefix).
    pub name: &'static str,
    /// One-line human title (`[scenario] title`).
    pub title: &'static str,
    axes: Vec<(String, AxisValues)>,
    /// Profiles resolved from the `uarch` axis, in axis order.
    profiles: Vec<UarchProfile>,
    /// Fixed message pattern (`[message] pattern`), or `None` when the
    /// bundle sweeps a `pattern` axis instead.
    pattern: Option<MessagePattern>,
    message_seed: u64,
    bits: usize,
    quick_bits: usize,
    mt_bits: usize,
    quick_mt_bits: usize,
    noise: Option<MtNoise>,
}

fn get_float(t: &Table, key: &str) -> Result<f64, ScenarioError> {
    match t.get(key) {
        Some(e) => match e.value {
            Value::Float(v) => Ok(v),
            Value::Int(_) => Err(ScenarioError::at(
                e.line,
                format!(
                    "key `{key}` in [{}]: expected float, got integer (write `0` as `0.0`)",
                    t.name
                ),
            )),
            ref other => Err(ScenarioError::at(
                e.line,
                format!(
                    "key `{key}` in [{}]: expected float, got {}",
                    t.name,
                    other.type_name()
                ),
            )),
        },
        None => Err(ScenarioError::at(
            t.line,
            format!("missing key `{key}` in [{}]", t.name),
        )),
    }
}

fn reject_unknown_keys(t: &Table, allowed: &[&str]) -> Result<(), ScenarioError> {
    for e in &t.entries {
        if !allowed.contains(&e.key.as_str()) {
            return Err(ScenarioError::at(
                e.line,
                format!("unknown key `{}` in [{}]", e.key, t.name),
            ));
        }
    }
    Ok(())
}

/// Pulls an axis entry's value out as a non-empty duplicate-free string
/// array.
fn str_axis(e: &Entry) -> Result<Vec<String>, ScenarioError> {
    let Value::Array(items) = &e.value else {
        return Err(ScenarioError::at(
            e.line,
            format!("axis `{}` in [grid] must be a non-empty array", e.key),
        ));
    };
    let mut out = Vec::with_capacity(items.len());
    for item in items {
        match item {
            Value::Str(s) => {
                if out.contains(s) {
                    return Err(ScenarioError::at(
                        e.line,
                        format!("axis `{}` in [grid] repeats `{s}`", e.key),
                    ));
                }
                out.push(s.clone());
            }
            other => {
                return Err(ScenarioError::at(
                    e.line,
                    format!(
                        "axis `{}` in [grid]: expected an array of strings, got {}",
                        e.key,
                        other.type_name()
                    ),
                ));
            }
        }
    }
    if out.is_empty() {
        return Err(ScenarioError::at(
            e.line,
            format!("axis `{}` in [grid] must be a non-empty array", e.key),
        ));
    }
    Ok(out)
}

fn int_axis(e: &Entry) -> Result<Vec<i64>, ScenarioError> {
    let Value::Array(items) = &e.value else {
        return Err(ScenarioError::at(
            e.line,
            format!("axis `{}` in [grid] must be a non-empty array", e.key),
        ));
    };
    let mut out = Vec::with_capacity(items.len());
    for item in items {
        match item {
            Value::Int(v) => {
                if out.contains(v) {
                    return Err(ScenarioError::at(
                        e.line,
                        format!("axis `{}` in [grid] repeats `{v}`", e.key),
                    ));
                }
                out.push(*v);
            }
            other => {
                return Err(ScenarioError::at(
                    e.line,
                    format!(
                        "axis `{}` in [grid]: expected an array of integers, got {}",
                        e.key,
                        other.type_name()
                    ),
                ));
            }
        }
    }
    if out.is_empty() {
        return Err(ScenarioError::at(
            e.line,
            format!("axis `{}` in [grid] must be a non-empty array", e.key),
        ));
    }
    Ok(out)
}

fn resolve_pattern(label: &str) -> Option<MessagePattern> {
    MessagePattern::all()
        .into_iter()
        .find(|p| p.to_string() == label)
}

/// Parses and validates a scenario bundle against `profiles`.
///
/// Every axis value is resolved eagerly — unknown uarch keys, channel
/// names, machine names and pattern labels are load-time errors with
/// stable messages, never run-time panics.
pub fn parse_bundle(
    text: &str,
    profiles: &ProfileRegistry,
) -> Result<ScenarioBundle, ScenarioError> {
    let doc = Doc::parse(text)?;
    let kind = document_kind(&doc)?;
    if kind != "scenario" {
        return Err(ScenarioError::doc(format!(
            "expected a scenario file, got kind = \"{kind}\""
        )));
    }
    check_tables(
        &doc,
        &["scenario", "grid", "message", "workload", "noise"],
        &["scenario", "grid", "message", "workload"],
    )?;

    let meta = doc.table("scenario").expect("required above"); // lint: allow(panic-path) — check_tables guarantees presence
    reject_unknown_keys(meta, &["name", "title"])?;
    let name = get_str(meta, "name")?;
    if !is_bare_key(name) {
        return Err(ScenarioError::at(
            meta.get("name").expect("just read").line, // lint: allow(panic-path) — name was read above
            format!("scenario name `{name}` must contain only [A-Za-z0-9_-]"),
        ));
    }
    let title = get_str(meta, "title")?.to_string();

    let grid = doc.table("grid").expect("required above"); // lint: allow(panic-path) — check_tables guarantees presence
    let mut axes = Vec::new();
    let mut bundle_profiles = Vec::new();
    let mut channels: Vec<String> = Vec::new();
    let mut has_pattern_axis = false;
    for e in &grid.entries {
        match e.key.as_str() {
            "uarch" => {
                let keys = str_axis(e)?;
                for key in &keys {
                    match profiles.get(key) {
                        Some(p) => bundle_profiles.push(p),
                        None => {
                            return Err(ScenarioError::at(
                                e.line,
                                format!(
                                    "unknown uarch profile `{key}` (known: {})",
                                    profiles.keys().join(", ")
                                ),
                            ));
                        }
                    }
                }
                axes.push((e.key.clone(), AxisValues::Strs(keys)));
            }
            "channel" => {
                let names = str_axis(e)?;
                for ch in &names {
                    if channel_info(ch).is_none() {
                        return Err(ScenarioError::at(e.line, format!("unknown channel `{ch}`")));
                    }
                }
                channels = names.clone();
                axes.push((e.key.clone(), AxisValues::Strs(names)));
            }
            "machine" => {
                let names = str_axis(e)?;
                for m in &names {
                    if !ProcessorModel::all().iter().any(|p| p.name == *m) {
                        return Err(ScenarioError::at(
                            e.line,
                            format!(
                                "unknown machine `{m}` (known: {})",
                                ProcessorModel::all()
                                    .iter()
                                    .map(|p| p.name)
                                    .collect::<Vec<_>>()
                                    .join(", ")
                            ),
                        ));
                    }
                }
                axes.push((e.key.clone(), AxisValues::Strs(names)));
            }
            "pattern" => {
                let labels = str_axis(e)?;
                for label in &labels {
                    if resolve_pattern(label).is_none() {
                        return Err(ScenarioError::at(
                            e.line,
                            format!(
                                "unknown message pattern `{label}` (supported: all-0s, all-1s, alternating, random)"
                            ),
                        ));
                    }
                }
                has_pattern_axis = true;
                axes.push((e.key.clone(), AxisValues::Strs(labels)));
            }
            "d" => {
                let values = int_axis(e)?;
                if values.iter().any(|&v| !(1..=8).contains(&v)) {
                    return Err(ScenarioError::at(
                        e.line,
                        "axis `d` values must be in 1..=8".to_string(),
                    ));
                }
                axes.push((e.key.clone(), AxisValues::Ints(values)));
            }
            other => {
                return Err(ScenarioError::at(
                    e.line,
                    format!(
                        "unknown axis `{other}` in [grid] (supported: {})",
                        AXES.join(", ")
                    ),
                ));
            }
        }
    }
    for required in REQUIRED_AXES {
        if !axes.iter().any(|(name, _)| name == required) {
            return Err(ScenarioError::at(
                grid.line,
                format!("missing axis `{required}` in [grid]"),
            ));
        }
    }

    let message = doc.table("message").expect("required above"); // lint: allow(panic-path) — check_tables guarantees presence
    reject_unknown_keys(message, &["seed", "pattern"])?;
    let message_seed = get_uint(message, "seed")?;
    let pattern = match message.get("pattern") {
        Some(_) if has_pattern_axis => {
            return Err(ScenarioError::doc(
                "pattern is both a [grid] axis and a [message] key — pick one",
            ));
        }
        Some(_) => {
            let label = get_str(message, "pattern")?;
            match resolve_pattern(label) {
                Some(p) => Some(p),
                None => {
                    return Err(ScenarioError::at(
                        message.get("pattern").expect("just read").line, // lint: allow(panic-path) — pattern was read above
                        format!(
                            "unknown message pattern `{label}` (supported: all-0s, all-1s, alternating, random)"
                        ),
                    ));
                }
            }
        }
        None if has_pattern_axis => None,
        None => {
            return Err(ScenarioError::at(
                message.line,
                "missing key `pattern` in [message] (or a `pattern` axis in [grid])",
            ));
        }
    };

    let workload = doc.table("workload").expect("required above"); // lint: allow(panic-path) — check_tables guarantees presence
    reject_unknown_keys(
        workload,
        &["bits", "quick_bits", "mt_bits", "quick_mt_bits"],
    )?;
    let positive = |key: &str| -> Result<usize, ScenarioError> {
        let v = get_uint(workload, key)?;
        if v == 0 {
            return Err(ScenarioError::at(
                workload.get(key).expect("just read").line, // lint: allow(panic-path) — key was read above
                format!("key `{key}` in [workload]: must be a positive integer"),
            ));
        }
        Ok(v as usize)
    };
    let bits = positive("bits")?;
    let quick_bits = positive("quick_bits")?;
    let mt_bits = positive("mt_bits")?;
    let quick_mt_bits = positive("quick_mt_bits")?;

    let noise = match doc.table("noise") {
        Some(t) => {
            reject_unknown_keys(
                t,
                &[
                    "burst_probability",
                    "burst_relative",
                    "desync_probability",
                    "phase_slip_probability",
                ],
            )?;
            let probability = |key: &str| -> Result<f64, ScenarioError> {
                let v = get_float(t, key)?;
                if !(0.0..=1.0).contains(&v) {
                    return Err(ScenarioError::at(
                        t.get(key).expect("just read").line, // lint: allow(panic-path) — key was read above
                        format!("key `{key}` in [noise]: must be a probability in 0.0..=1.0"),
                    ));
                }
                Ok(v)
            };
            let burst_relative = get_float(t, "burst_relative")?;
            if !burst_relative.is_finite() || burst_relative < 0.0 {
                return Err(ScenarioError::at(
                    t.get("burst_relative").expect("just read").line, // lint: allow(panic-path) — key was read above
                    "key `burst_relative` in [noise]: must be a non-negative float",
                ));
            }
            let noise = MtNoise {
                burst_probability: probability("burst_probability")?,
                burst_relative,
                desync_probability: probability("desync_probability")?,
                phase_slip_probability: probability("phase_slip_probability")?,
            };
            for ch in &channels {
                let supports = channel_info(ch).is_some_and(|i| i.supports_noise);
                if !supports {
                    return Err(ScenarioError::at(
                        t.line,
                        format!(
                            "channel `{ch}` has no environmental-noise model ([noise] requires MT channels)"
                        ),
                    ));
                }
            }
            Some(noise)
        }
        None => None,
    };

    Ok(ScenarioBundle {
        name: leak(name.to_string()),
        title: leak(title),
        axes,
        profiles: bundle_profiles,
        pattern,
        message_seed,
        bits,
        quick_bits,
        mt_bits,
        quick_mt_bits,
        noise,
    })
}

/// Loads and validates a `kind = "scenario"` bundle from disk.
pub fn load_bundle(
    path: impl AsRef<Path>,
    profiles: &ProfileRegistry,
) -> Result<ScenarioBundle, ScenarioError> {
    let path = path.as_ref();
    let text = std::fs::read_to_string(path)
        .map_err(|e| ScenarioError::doc(format!("{}: {e}", path.display())))?;
    parse_bundle(&text, profiles).map_err(|e| e.in_file(path))
}

impl ScenarioBundle {
    /// Cells in the bundle's full grid (the `--validate` report; the
    /// quick grid has the same shape — only the workload shrinks).
    pub fn cell_count(&self) -> usize {
        self.axes.iter().map(|(_, v)| v.len()).product()
    }

    /// Lowers the bundle onto the [`Experiment`] trait. The result
    /// registers into the standard [`Registry`](leaky_exp::Registry) and
    /// runs through the same runner, store and trace machinery as the
    /// compiled-in sweeps.
    pub fn into_experiment(self) -> Box<dyn Experiment> {
        Box::new(ScenarioExperiment { bundle: self })
    }
}

/// The lowered form: [`ScenarioBundle`] behind the [`Experiment`] trait.
struct ScenarioExperiment {
    bundle: ScenarioBundle,
}

impl ScenarioExperiment {
    fn profile_for(&self, key: &str) -> UarchProfile {
        self.bundle
            .profiles
            .iter()
            .find(|p| p.key == key)
            .copied()
            .unwrap_or_else(|| panic!("unresolved uarch profile {key:?}")) // lint: allow(panic-path) — parse_bundle resolved every axis value
    }
}

impl Experiment for ScenarioExperiment {
    fn name(&self) -> &'static str {
        self.bundle.name
    }

    fn title(&self) -> &'static str {
        self.bundle.title
    }

    fn grid(&self, quick: bool) -> ParamGrid {
        // Same leading quick/full axis as the compiled-in sweeps, then
        // the file's axes in file order — a bundle restating a built-in
        // spec therefore reproduces its content keys (and so its seeds
        // and its store entries) exactly.
        let mut grid = ParamGrid::new(self.bundle.name)
            .axis_strs("profile", [if quick { "quick" } else { "full" }]);
        for (name, values) in &self.bundle.axes {
            grid = match values {
                AxisValues::Strs(v) => grid.axis_strs(name, v.iter().cloned()),
                AxisValues::Ints(v) => grid.axis_ints(name, v.iter().copied()),
            };
        }
        grid
    }

    fn run_cell(&self, cell: &JobCell) -> Option<CellMeasurement> {
        self.run_cell_traced(cell, TraceMode::Off)
    }

    fn run_cell_traced(&self, cell: &JobCell, trace: TraceMode) -> Option<CellMeasurement> {
        let quick = cell.str("profile") == "quick";
        let channel = cell.str("channel").to_string();
        let (mut bits, mt_bits) = if quick {
            (self.bundle.quick_bits, self.bundle.quick_mt_bits)
        } else {
            (self.bundle.bits, self.bundle.mt_bits)
        };
        if channel_info(&channel).is_some_and(|i| i.requires_smt) {
            bits = mt_bits;
        }
        let mut spec = ChannelSpec::new(&channel)
            .model(machine(cell.str("machine")))
            .profile(self.profile_for(cell.str("uarch")))
            .seed(cell.seed);
        if cell.get("d").is_some() {
            let params = default_params(&channel)
                .unwrap_or_else(|| panic!("no default params for {channel:?}")) // lint: allow(panic-path) — parse_bundle validated the channel name
                .with_d(cell.int("d") as usize);
            spec = spec.params(params);
        }
        if let Some(noise) = self.bundle.noise {
            spec = spec.noise(noise);
        }
        let pattern = match self.bundle.pattern {
            Some(p) => p,
            None => resolve_pattern(cell.str("pattern"))
                .unwrap_or_else(|| panic!("unresolved pattern {:?}", cell.str("pattern"))), // lint: allow(panic-path) — parse_bundle resolved every axis value
        };
        let message = pattern.generate(bits, self.bundle.message_seed);
        channel_cell_traced(&spec, &message, trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use leaky_exp::run_experiment;

    fn minimal() -> String {
        r#"
schema = "leaky-frontends/scenario/v1"
kind = "scenario"

[scenario]
name = "mini"
title = "Minimal bundle"

[grid]
uarch = ["skylake"]
channel = ["non-mt-fast-eviction"]
machine = ["Gold 6226"]

[message]
pattern = "alternating"
seed = 0

[workload]
bits = 16
quick_bits = 8
mt_bits = 8
quick_mt_bits = 4
"#
        .to_string()
    }

    #[test]
    fn minimal_bundle_parses_and_runs() {
        let reg = ProfileRegistry::builtins();
        let bundle = parse_bundle(&minimal(), &reg).expect("valid bundle");
        assert_eq!(bundle.name, "mini");
        assert_eq!(bundle.cell_count(), 1);
        let exp = bundle.into_experiment();
        let run = run_experiment(exp.as_ref(), true, 1);
        assert_eq!(run.cells.len(), 1);
        assert_eq!(
            run.cells[0].cell.key,
            "mini/profile=quick/uarch=skylake/channel=non-mt-fast-eviction/machine=Gold 6226"
        );
        assert!(run.cells[0].metrics().is_some());
    }

    #[test]
    fn bundle_grids_are_parallel_deterministic() {
        let reg = ProfileRegistry::builtins();
        let text = minimal().replace(
            "channel = [\"non-mt-fast-eviction\"]",
            "channel = [\"non-mt-fast-eviction\", \"mt-eviction\"]",
        );
        let bundle = parse_bundle(&text, &reg).expect("valid bundle");
        let exp = bundle.into_experiment();
        let a = run_experiment(exp.as_ref(), true, 1);
        let b = run_experiment(exp.as_ref(), true, 4);
        assert_eq!(a.cells, b.cells);
    }

    #[test]
    fn validation_errors_are_stable() {
        let reg = ProfileRegistry::builtins();
        let cases: [(&str, &str, &str); 6] = [
            (
                "uarch = [\"skylake\"]",
                "uarch = [\"pentium\"]",
                "line 10: unknown uarch profile `pentium` (known: skylake, icelake, constant_time)",
            ),
            (
                "channel = [\"non-mt-fast-eviction\"]",
                "channel = [\"warp-drive\"]",
                "line 11: unknown channel `warp-drive`",
            ),
            (
                "machine = [\"Gold 6226\"]",
                "machine = [\"Gold 6226\", \"Gold 6226\"]",
                "line 12: axis `machine` in [grid] repeats `Gold 6226`",
            ),
            (
                "pattern = \"alternating\"",
                "pattern = \"checkerboard\"",
                "line 15: unknown message pattern `checkerboard` (supported: all-0s, all-1s, alternating, random)",
            ),
            (
                "bits = 16",
                "bits = 0",
                "line 19: key `bits` in [workload]: must be a positive integer",
            ),
            (
                "machine = [\"Gold 6226\"]",
                "machine = []",
                "line 12: axis `machine` in [grid] must be a non-empty array",
            ),
        ];
        for (from, to, want) in cases {
            let text = minimal().replace(from, to);
            let err = parse_bundle(&text, &reg).expect_err(want);
            assert_eq!(err.to_string(), want);
        }
    }

    #[test]
    fn noise_requires_mt_channels() {
        let reg = ProfileRegistry::builtins();
        let text = minimal()
            + "\n[noise]\nburst_probability = 0.1\nburst_relative = 0.2\ndesync_probability = 0.08\nphase_slip_probability = 0.3\n";
        let err = parse_bundle(&text, &reg).expect_err("non-MT channel with noise");
        assert_eq!(
            err.to_string(),
            "line 24: channel `non-mt-fast-eviction` has no environmental-noise model ([noise] requires MT channels)"
        );
        let mt = text.replace(
            "channel = [\"non-mt-fast-eviction\"]",
            "channel = [\"mt-eviction\"]",
        );
        let bundle = parse_bundle(&mt, &reg).expect("MT channel with noise");
        assert!(bundle.noise.is_some());
    }

    #[test]
    fn pattern_axis_and_message_pattern_are_exclusive() {
        let reg = ProfileRegistry::builtins();
        let both = minimal().replace(
            "machine = [\"Gold 6226\"]",
            "machine = [\"Gold 6226\"]\npattern = [\"all-0s\"]",
        );
        let err = parse_bundle(&both, &reg).expect_err("both pattern sources");
        assert_eq!(
            err.to_string(),
            "pattern is both a [grid] axis and a [message] key — pick one"
        );

        let axis_only = both.replace("pattern = \"alternating\"\n", "");
        let bundle = parse_bundle(&axis_only, &reg).expect("pattern axis alone");
        assert!(bundle.pattern.is_none());
        assert_eq!(bundle.cell_count(), 1);
    }
}

//! Property test: `parse_profile ∘ encode_profile` is the identity on
//! arbitrary profiles — every geometry field, every cost (including
//! non-terminating decimals: the canonical writer uses shortest
//! round-trip float formatting), the LSD flag, key and description all
//! survive a trip through the file format bit-for-bit.

use leaky_isa::FrontendGeometry;
use leaky_scenario::{encode_profile, parse_profile};
use leaky_uarch::{CostModel, UarchProfile};
use proptest::prelude::*;

fn build(key_n: u64, g: &[usize], c: &[f64], lsd_enabled: bool) -> UarchProfile {
    let geometry = FrontendGeometry {
        dsb_sets: g[0],
        dsb_ways: g[1],
        dsb_window_bytes: g[2],
        dsb_line_uops: g[3],
        lsd_uops: g[4],
        lsd_windows: g[5],
        l1i_sets: g[6],
        l1i_ways: g[7],
        l1i_line_bytes: g[8],
        iq_entries: g[9],
        decode_width: g[10],
        idq_delivery_width: g[11],
    };
    let costs = CostModel {
        dsb_per_uop: c[0],
        lsd_per_uop: c[1],
        mite_line_base: c[2],
        mite_per_uop: c[3],
        dsb_to_mite_switch: c[4],
        mite_to_dsb_switch: c[5],
        lsd_flush: c[6],
        lcp_stall: c[7],
        lcp_sequential_extra: c[8],
        mite_per_instr: c[9],
        lcp_dsb_to_mite_switch: c[10],
        lcp_mite_to_dsb_switch: c[11],
        window_crossing_penalty: c[12],
        l1i_miss: c[13],
        loop_overhead: c[14],
        smt_mite_factor: c[15],
        timer_overhead: c[16],
    };
    UarchProfile {
        key: Box::leak(format!("gen-{key_n}").into_boxed_str()),
        description: Box::leak(format!("generated profile #{key_n} (\"quoted\")").into_boxed_str()),
        geometry,
        costs,
        lsd_enabled,
    }
}

proptest! {
    #[test]
    fn encode_parse_is_identity(
        key_n in 0u64..1_000_000,
        geometry in proptest::collection::vec(1usize..65_536, 12..13),
        costs in proptest::collection::vec(0.0f64..256.0, 17..18),
        lsd_enabled in any::<bool>(),
    ) {
        let profile = build(key_n, &geometry, &costs, lsd_enabled);
        let text = encode_profile(&profile);
        let parsed = parse_profile(&text).expect("canonical encoding parses");
        prop_assert_eq!(parsed.key, profile.key);
        prop_assert_eq!(parsed.description, profile.description);
        prop_assert_eq!(parsed.geometry, profile.geometry);
        prop_assert_eq!(parsed.costs, profile.costs);
        prop_assert_eq!(parsed.lsd_enabled, profile.lsd_enabled);
        prop_assert_eq!(parsed.fingerprint(), profile.fingerprint());
        // And the canonical form is a fixed point of the codec.
        prop_assert_eq!(encode_profile(&parsed), text);
    }
}

//! Malformed-file corpus: every rejection path has a *stable*,
//! line-anchored error message, pinned here string-for-string. Tooling
//! (CI validation, editors) may match on these; changing one is a
//! breaking change to the scenario subsystem.
//!
//! Each case starts from the canonical Skylake encoding (line numbers
//! in the expectations refer to that layout: `[geometry]` opens at line
//! 9, `[costs]` at line 23) and applies one mutation.

use leaky_scenario::{encode_profile, parse_profile};
use leaky_uarch::UarchProfile;

fn canonical() -> String {
    encode_profile(&UarchProfile::skylake())
}

fn expect_error(text: &str, want: &str) {
    let err = parse_profile(text).expect_err(want);
    assert_eq!(err.to_string(), want);
}

#[test]
fn bad_version_tag() {
    let text = canonical().replace("scenario/v1", "scenario/v2");
    expect_error(
        &text,
        "line 1: schema must be \"leaky-frontends/scenario/v1\", got \"leaky-frontends/scenario/v2\"",
    );
}

#[test]
fn missing_schema_and_kind() {
    expect_error(
        &canonical().replace("schema = \"leaky-frontends/scenario/v1\"\n", ""),
        "missing top-level `schema` key",
    );
    expect_error(
        &canonical().replace("kind = \"profile\"\n", ""),
        "missing top-level `kind` key",
    );
    expect_error(
        &canonical().replace("kind = \"profile\"", "kind = \"recipe\""),
        "line 2: kind must be \"profile\" or \"scenario\", got \"recipe\"",
    );
}

#[test]
fn kind_mismatch() {
    let text = canonical().replace("kind = \"profile\"", "kind = \"scenario\"");
    expect_error(&text, "expected a profile file, got kind = \"scenario\"");
}

#[test]
fn unknown_keys_and_tables() {
    expect_error(
        &canonical().replace("dsb_sets = 32", "dsb_sets = 32\nfrobnicator = 3"),
        "line 11: unknown key `frobnicator` in [geometry]",
    );
    expect_error(
        &canonical().replace("[profile]", "[profile]\nvendor = \"intel\""),
        "line 5: unknown key `vendor` in [profile]",
    );
    expect_error(
        &(canonical() + "[annotations]\nnote = \"hi\"\n"),
        "line 41: unknown table [annotations]",
    );
    expect_error(
        &canonical().replace("schema =", "epoch = 3\nschema ="),
        "line 1: unknown top-level key `epoch`",
    );
}

#[test]
fn type_mismatches() {
    expect_error(
        &canonical().replace("dsb_sets = 32", "dsb_sets = \"32\""),
        "line 10: key `dsb_sets` in [geometry]: expected integer, got string",
    );
    expect_error(
        &canonical().replace("mite_line_base = 4.0", "mite_line_base = 4"),
        "line 26: key `mite_line_base` in [costs]: expected float, got integer (write `4` as `4.0`)",
    );
    expect_error(
        &canonical().replace("lsd_enabled = true", "lsd_enabled = 1"),
        "line 7: key `lsd_enabled` in [profile]: expected boolean, got integer",
    );
}

#[test]
fn out_of_range_values() {
    expect_error(
        &canonical().replace("dsb_sets = 32", "dsb_sets = 0"),
        "line 10: key `dsb_sets` in [geometry]: must be a positive integer",
    );
    expect_error(
        &canonical().replace("mite_line_base = 4.0", "mite_line_base = -4.0"),
        "line 26: key `mite_line_base` in [costs]: must be non-negative",
    );
}

#[test]
fn missing_keys_and_tables() {
    // Missing keys anchor at the table header line.
    expect_error(
        &canonical().replace("dsb_ways = 8\n", ""),
        "line 9: missing key `dsb_ways` in [geometry]",
    );
    expect_error(
        &canonical().replace("timer_overhead = 30.0\n", ""),
        "line 23: missing key `timer_overhead` in [costs]",
    );
    // Dropping a whole table is a document-level error (no line).
    let no_costs = canonical()
        .lines()
        .take_while(|l| *l != "[costs]")
        .collect::<Vec<_>>()
        .join("\n");
    expect_error(&no_costs, "missing table [costs]");
}

#[test]
fn duplicate_tables_and_keys() {
    expect_error(
        &(canonical() + "[geometry]\n"),
        "line 41: duplicate table [geometry]",
    );
    expect_error(
        &canonical().replace("dsb_sets = 32", "dsb_sets = 32\ndsb_sets = 32"),
        "line 11: duplicate key `dsb_sets` in [geometry]",
    );
}

#[test]
fn syntax_errors() {
    expect_error(
        &canonical().replace("dsb_sets = 32", "dsb_sets 32"),
        "line 10: expected `key = value` or `[table]`, got `dsb_sets 32`",
    );
    expect_error(
        &canonical().replace("key = \"skylake\"", "key = \"skylake"),
        "line 5: unterminated string",
    );
    expect_error(
        &canonical().replace("dsb_sets = 32", "dsb_sets = thirty-two"),
        "line 10: cannot parse value `thirty-two`",
    );
}

#[test]
fn invalid_profile_key() {
    expect_error(
        &canonical().replace("key = \"skylake\"", "key = \"sky/lake\""),
        "line 5: profile key `sky/lake` must contain only [A-Za-z0-9_-]",
    );
}

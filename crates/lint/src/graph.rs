//! The over-approximate workspace call graph.
//!
//! Nodes are the library functions parsed by [`crate::parse`]; edges are
//! resolved purely by *name*, never by type inference:
//!
//! * `recv.method(..)`   → every workspace method named `method` whose
//!   self type is *visible* from the calling file: declared in the same
//!   crate, or named by one of the file's `use` declarations. Trait
//!   methods resolve through the imported trait, so cross-crate dynamic
//!   dispatch still forms an edge; a same-named method on a type the
//!   file could not even see does not;
//! * `Type::assoc(..)`   → the methods of `Type` named `assoc` (an
//!   unknown CamelCase qualifier — `Vec`, `Box` — resolves to nothing);
//! * `Self::assoc(..)`   → `Self` rewritten to the caller's impl type;
//! * `module::free(..)`  → every free function named `free`;
//! * `free(..)`          → free functions named `free`, same-crate
//!   matches preferred.
//!
//! This over-approximates reachability by design: a rule built on it
//! (panic-reachability) may report a path that type-level dispatch would
//! rule out, but it can only *miss* a path through function pointers or
//! macros — acceptable for a ratcheted lint, fatal for a verifier, which
//! this is not. Node order and neighbor lists are sorted by (file,
//! line), so every traversal — and therefore every rendered call path —
//! is deterministic.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::lexer::TokenKind;
use crate::source::SourceFile;

/// One call-graph node: a function item in a library file.
#[derive(Debug)]
pub struct FnNode {
    /// Index of the owning file in the slice passed to
    /// [`CallGraph::build`].
    pub file: usize,
    /// Bare name.
    pub name: String,
    /// Qualified name (`Type::name` for methods, else `name`).
    pub qual: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Declared with a bare `pub`.
    pub is_pub: bool,
    /// Doc block declares a `# Panics` contract.
    pub has_panics_doc: bool,
    /// Body token range in the owning file's `code`, when present.
    pub body: Option<(usize, usize)>,
}

impl FnNode {
    /// Whether the node is a method (lives in an `impl`/`trait` block).
    pub fn is_method(&self) -> bool {
        self.qual.contains("::")
    }
}

/// The workspace call graph. Built once per lint run and shared by the
/// semantic rules.
#[derive(Debug)]
pub struct CallGraph {
    /// All nodes, ordered by (file walk order, source line) — the file
    /// walk itself is sorted, so this order is deterministic.
    pub nodes: Vec<FnNode>,
    /// Adjacency lists, ascending node indices (deduplicated).
    edges: Vec<Vec<usize>>,
}

impl CallGraph {
    /// Builds the graph over `files` (the workspace's library + binary
    /// sources, in sorted walk order). Only library functions outside
    /// `#[cfg(test)]` become nodes.
    pub fn build(files: &[&SourceFile]) -> CallGraph {
        let mut nodes = Vec::new();
        for (fi, f) in files.iter().enumerate() {
            if !f.is_library {
                continue;
            }
            for item in &f.items.fns {
                if f.is_test_line(item.line) {
                    continue;
                }
                nodes.push(FnNode {
                    file: fi,
                    name: item.name.clone(),
                    qual: item.qual.clone(),
                    line: item.line,
                    is_pub: item.is_pub,
                    has_panics_doc: item.has_panics_doc,
                    body: item.body,
                });
            }
        }

        // Name-resolution tables.
        let mut by_qual: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut free_by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut methods_by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        for (n, node) in nodes.iter().enumerate() {
            by_qual.entry(&node.qual).or_default().push(n);
            if node.is_method() {
                methods_by_name.entry(&node.name).or_default().push(n);
            } else {
                free_by_name.entry(&node.name).or_default().push(n);
            }
        }

        let mut edges = vec![Vec::new(); nodes.len()];
        for (n, node) in nodes.iter().enumerate() {
            let Some((open, close)) = node.body else {
                continue;
            };
            let code = &files[node.file].code;
            let self_ty = node.qual.split_once("::").map(|(ty, _)| ty);
            let crate_dir = files[node.file].crate_dir.as_deref();
            let mut out: BTreeSet<usize> = BTreeSet::new();

            for i in open + 1..close {
                if code[i].kind != TokenKind::Ident
                    || !code.get(i + 1).is_some_and(|t| t.is_punct('('))
                {
                    continue;
                }
                // `fn name(` is a definition, not a call.
                if i > 0 && code[i - 1].is_ident("fn") {
                    continue;
                }
                let name = code[i].text.as_str();
                if i > 0 && code[i - 1].is_punct('.') {
                    // Method call: workspace methods of that name whose
                    // self type is visible from this file.
                    if let Some(ms) = methods_by_name.get(name) {
                        let caller_file = files[node.file];
                        out.extend(ms.iter().copied().filter(|&m| {
                            let target = &nodes[m];
                            if files[target.file].crate_dir.as_deref() == crate_dir {
                                return true;
                            }
                            target.qual.split_once("::").is_some_and(|(ty, _)| {
                                caller_file.items.uses.iter().any(|u| u == ty)
                            })
                        }));
                    }
                    continue;
                }
                let qualifier = (i >= 3
                    && code[i - 1].is_punct(':')
                    && code[i - 2].is_punct(':')
                    && code[i - 3].kind == TokenKind::Ident)
                    .then(|| code[i - 3].text.as_str());
                match qualifier {
                    Some("Self") => {
                        if let Some(ty) = self_ty {
                            if let Some(ns) = by_qual.get(format!("{ty}::{name}").as_str()) {
                                out.extend(ns.iter().copied());
                            }
                        }
                    }
                    Some(q) if q.starts_with(char::is_uppercase) => {
                        // `Type::assoc(` — resolves only if the type is
                        // ours; `Vec::new(` etc. fall through to nothing.
                        if let Some(ns) = by_qual.get(format!("{q}::{name}").as_str()) {
                            out.extend(ns.iter().copied());
                        }
                    }
                    Some(_) => {
                        // `module::free(` — the qualifier is a path
                        // segment, not a type; match free fns by name.
                        if let Some(ns) = free_by_name.get(name) {
                            out.extend(ns.iter().copied());
                        }
                    }
                    None => {
                        // Plain `free(` — prefer same-crate free fns,
                        // fall back to any (the name may be imported).
                        if let Some(ns) = free_by_name.get(name) {
                            let same: Vec<usize> = ns
                                .iter()
                                .copied()
                                .filter(|&m| files[nodes[m].file].crate_dir.as_deref() == crate_dir)
                                .collect();
                            out.extend(if same.is_empty() { ns.clone() } else { same });
                        }
                    }
                }
            }
            edges[n] = out.into_iter().collect();
        }
        CallGraph { nodes, edges }
    }

    /// The callees of node `n`, ascending node index.
    pub fn callees(&self, n: usize) -> &[usize] {
        &self.edges[n]
    }

    /// Breadth-first shortest path from `from` to the nearest node
    /// satisfying `is_target` (which may be `from` itself), as the full
    /// node-index path. Ties break on ascending node index, so the path
    /// is deterministic.
    pub fn shortest_path(
        &self,
        from: usize,
        is_target: impl Fn(usize) -> bool,
    ) -> Option<Vec<usize>> {
        if is_target(from) {
            return Some(vec![from]);
        }
        let mut parent: BTreeMap<usize, usize> = BTreeMap::new();
        let mut queue = VecDeque::from([from]);
        while let Some(n) = queue.pop_front() {
            for &m in self.callees(n) {
                if m == from || parent.contains_key(&m) {
                    continue;
                }
                parent.insert(m, n);
                if is_target(m) {
                    let mut path = vec![m];
                    let mut cur = m;
                    while cur != from {
                        cur = parent[&cur];
                        path.push(cur);
                    }
                    path.reverse();
                    return Some(path);
                }
                queue.push_back(m);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lib(path: &str, src: &str) -> SourceFile {
        SourceFile::new(path.into(), src)
    }

    fn graph(srcs: &[(&str, &str)]) -> (CallGraph, Vec<SourceFile>) {
        let files: Vec<SourceFile> = srcs.iter().map(|(p, s)| lib(p, s)).collect();
        let refs: Vec<&SourceFile> = files.iter().collect();
        let g = CallGraph::build(&refs);
        (g, files)
    }

    fn idx(g: &CallGraph, qual: &str) -> usize {
        g.nodes
            .iter()
            .position(|n| n.qual == qual)
            .unwrap_or_else(|| panic!("node {qual} missing"))
    }

    #[test]
    fn free_calls_prefer_the_same_crate() {
        let (g, _) = graph(&[
            (
                "crates/a/src/lib.rs",
                "pub fn caller() { helper(); }\nfn helper() {}\n",
            ),
            ("crates/b/src/lib.rs", "pub fn helper() {}\n"),
        ]);
        let caller = idx(&g, "caller");
        let local = idx(&g, "helper");
        assert_eq!(g.callees(caller), &[local]);
        assert!(g.nodes[local].file == 0, "same-crate helper wins");
    }

    #[test]
    fn qualified_and_method_calls_resolve() {
        let (g, _) = graph(&[(
            "crates/a/src/lib.rs",
            "pub struct Decoder;\n\
             impl Decoder {\n\
                 pub fn fit(&self) {}\n\
                 pub fn make() -> Decoder { Self::helper(); Decoder }\n\
                 fn helper() {}\n\
             }\n\
             pub fn drive(d: &Decoder) { d.fit(); Decoder::make(); Vec::new(); }\n",
        )]);
        let drive = idx(&g, "drive");
        assert_eq!(
            g.callees(drive),
            &[idx(&g, "Decoder::fit"), idx(&g, "Decoder::make")],
            "method + qualified resolve; Vec::new resolves to nothing"
        );
        let make = idx(&g, "Decoder::make");
        assert_eq!(g.callees(make), &[idx(&g, "Decoder::helper")]);
    }

    #[test]
    fn test_code_is_not_in_the_graph() {
        let (g, _) = graph(&[(
            "crates/a/src/lib.rs",
            "pub fn live() {}\n#[cfg(test)]\nmod tests {\n    fn helper() {}\n}\n",
        )]);
        assert_eq!(g.nodes.len(), 1);
        assert_eq!(g.nodes[0].qual, "live");
    }

    #[test]
    fn shortest_path_is_deterministic_and_minimal() {
        let (g, _) = graph(&[(
            "crates/a/src/lib.rs",
            "pub fn entry() { mid(); deep(); }\n\
             fn mid() { deep(); }\n\
             fn deep() { sink(); }\n\
             fn sink() {}\n",
        )]);
        let entry = idx(&g, "entry");
        let sink = idx(&g, "sink");
        let path = g.shortest_path(entry, |n| n == sink).expect("reachable");
        // entry → deep → sink (2 hops), not via mid (3 hops).
        assert_eq!(path, vec![entry, idx(&g, "deep"), sink]);
        assert_eq!(g.shortest_path(sink, |n| n == entry), None);
        assert_eq!(g.shortest_path(entry, |n| n == entry), Some(vec![entry]));
    }

    #[test]
    fn cross_crate_methods_need_an_import_to_resolve() {
        let collector = "pub struct Collector;\nimpl Collector { pub fn insert(&self) {} }\n";
        let (g, _) = graph(&[
            ("crates/a/src/lib.rs", collector),
            (
                "crates/b/src/lib.rs",
                "use leaky_a::Collector;\npub fn wired(c: &Collector) { c.insert(); }\n",
            ),
            (
                "crates/c/src/lib.rs",
                "pub fn unwired(m: &mut std::collections::BTreeMap<u32, u32>) { m.insert(1, 2); }\n",
            ),
        ]);
        let insert = idx(&g, "Collector::insert");
        assert_eq!(g.callees(idx(&g, "wired")), &[insert]);
        assert_eq!(
            g.callees(idx(&g, "unwired")),
            &[] as &[usize],
            "a same-named method on an un-imported foreign type is invisible"
        );
    }

    #[test]
    fn module_path_calls_fall_back_to_free_fns() {
        let (g, _) = graph(&[
            (
                "crates/a/src/lib.rs",
                "pub fn caller() { geom::first(); }\n",
            ),
            ("crates/b/src/geom.rs", "pub fn first() {}\n"),
        ]);
        assert_eq!(g.callees(idx(&g, "caller")), &[idx(&g, "first")]);
    }
}

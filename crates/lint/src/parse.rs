//! Item-level parsing on top of the lexer: functions (with their
//! `impl`/`trait` qualification, visibility, body extent and `# Panics`
//! doc contracts), struct/enum names and `use` declarations.
//!
//! This is the layer that turns the flat token stream into the
//! *workspace symbol table* the call graph ([`crate::graph`]) resolves
//! against. Like the lexer it is deliberately approximate: it only
//! guarantees the properties the semantic rules consume — which `fn`
//! tokens start items, which `impl`/`trait` block encloses them, whether
//! the doc block above them declares a `# Panics` contract — and
//! degrades gracefully on anything it does not model.

use crate::lexer::{Token, TokenKind};
use crate::source::matching;

/// One parsed function item.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Bare function name.
    pub name: String,
    /// Qualified name: `Type::name` inside an `impl`/`trait` block,
    /// otherwise the bare name.
    pub qual: String,
    /// Declared with a bare `pub` (not `pub(crate)`/`pub(super)`) —
    /// the panic-reachability entry-point criterion.
    pub is_pub: bool,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Token index range `(open_brace, close_brace)` of the body in the
    /// comment-stripped code stream; `None` for bodiless declarations
    /// (trait method signatures).
    pub body: Option<(usize, usize)>,
    /// Whether the doc block above the item contains a `# Panics`
    /// section — a *documented* panic contract.
    pub has_panics_doc: bool,
}

/// The items of one file: the symbol-table contribution plus the
/// comment-stripped code stream the item ranges index into.
#[derive(Debug, Default)]
pub struct FileItems {
    /// Every `fn` item, in source order.
    pub fns: Vec<FnItem>,
    /// Declared `struct`/`enum`/`trait` type names (used to classify
    /// `Type::fn` call qualifiers as workspace types).
    pub types: Vec<String>,
    /// Leaf identifiers of `use` declarations (imported names).
    pub uses: Vec<String>,
}

/// A (range, self-type) pair for an `impl`/`trait` block.
struct Block {
    open: usize,
    close: usize,
    self_ty: String,
}

/// Parses `tokens` (raw, comments included) into the comment-stripped
/// code stream plus the file's items. The code stream is exactly what
/// the token-level rules already consume; the items index into it.
pub fn parse_items(tokens: &[Token]) -> (Vec<Token>, FileItems) {
    // Doc contracts must be read off the raw stream (comments carry
    // them); map them to the line of the next `fn` keyword.
    let panics_doc_fn_lines = collect_panics_doc_lines(tokens);

    let code: Vec<Token> = tokens
        .iter()
        .filter(|t| t.kind != TokenKind::Comment)
        .cloned()
        .collect();

    let blocks = collect_blocks(&code);
    let mut items = FileItems::default();

    let mut i = 0;
    while i < code.len() {
        let tok = &code[i];
        if (tok.is_ident("struct") || tok.is_ident("enum") || tok.is_ident("trait"))
            && code.get(i + 1).is_some_and(|t| t.kind == TokenKind::Ident)
        {
            items.types.push(code[i + 1].text.clone());
            i += 2;
            continue;
        }
        if tok.is_ident("use") {
            let mut j = i + 1;
            while j < code.len() && !code[j].is_punct(';') {
                if code[j].kind == TokenKind::Ident {
                    // A leaf name is one not followed by `::` (path
                    // segment) or another ident (`x as y` renames).
                    let leaf = code
                        .get(j + 1)
                        .is_none_or(|t| !t.is_punct(':') && t.kind != TokenKind::Ident);
                    if leaf {
                        items.uses.push(code[j].text.clone());
                    }
                }
                j += 1;
            }
            i = j + 1;
            continue;
        }
        if tok.is_ident("fn") && code.get(i + 1).is_some_and(|t| t.kind == TokenKind::Ident) {
            let name = code[i + 1].text.clone();
            let is_pub = leading_pub(&code, i);
            let body = fn_body_range(&code, i);
            let self_ty = blocks
                .iter()
                .find(|b| b.open < i && i < b.close)
                .map(|b| b.self_ty.clone());
            let qual = match &self_ty {
                Some(ty) => format!("{ty}::{name}"),
                None => name.clone(),
            };
            items.fns.push(FnItem {
                name,
                qual,
                is_pub,
                line: tok.line,
                body,
                has_panics_doc: panics_doc_fn_lines.contains(&tok.line),
            });
            // Continue scanning *inside* the body too (nested fns are
            // callable); the linear walk handles that naturally.
            i += 2;
            continue;
        }
        i += 1;
    }
    (code, items)
}

/// Lines of `fn` keywords whose preceding doc block contains
/// `# Panics`. A doc block is a run of `///` comments, attributes and
/// item-prelude keywords; any statement terminator resets it.
fn collect_panics_doc_lines(tokens: &[Token]) -> Vec<u32> {
    let mut out = Vec::new();
    let mut pending = false;
    for (i, tok) in tokens.iter().enumerate() {
        match tok.kind {
            TokenKind::Comment => {
                // `/// ...` lexes to a Comment whose text starts with `/`.
                // The whole line must BE the section header: docs that
                // merely mention "# Panics" in prose declare nothing.
                if let Some(body) = tok.text.strip_prefix('/') {
                    if body.trim() == "# Panics" {
                        pending = true;
                    }
                }
            }
            TokenKind::Ident if tok.text == "fn" => {
                if pending
                    && tokens
                        .get(i + 1)
                        .is_some_and(|t| t.kind == TokenKind::Ident)
                {
                    out.push(tok.line);
                }
                pending = false;
            }
            // Terminators of the previous item clear any stray pending
            // doc; attributes (`#[...]`) and visibility keywords between
            // the doc block and `fn` pass through.
            TokenKind::Punct(';') | TokenKind::Punct('{') | TokenKind::Punct('}') => {
                pending = false;
            }
            _ => {}
        }
    }
    out
}

/// Whether the `fn` at `fn_idx` is declared with a bare `pub`, looking
/// back over the modifier keywords (`const`, `unsafe`, `async`,
/// `extern "C"`).
fn leading_pub(code: &[Token], fn_idx: usize) -> bool {
    let mut j = fn_idx;
    while j > 0 {
        j -= 1;
        let t = &code[j];
        let modifier = t.is_ident("const")
            || t.is_ident("unsafe")
            || t.is_ident("async")
            || t.is_ident("extern")
            || t.kind == TokenKind::Literal;
        if modifier {
            continue;
        }
        return t.is_ident("pub");
    }
    false
}

/// Body token range of the `fn` starting at `fn_idx`: the first `{` at
/// paren/bracket depth 0 after the signature, or `None` when a `;`
/// arrives first (trait method declaration).
fn fn_body_range(code: &[Token], fn_idx: usize) -> Option<(usize, usize)> {
    let mut j = fn_idx + 2;
    let mut paren = 0i32;
    while j < code.len() {
        let t = &code[j];
        if t.is_punct('(') || t.is_punct('[') {
            paren += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            paren -= 1;
        } else if paren == 0 && t.is_punct(';') {
            return None;
        } else if paren == 0 && t.is_punct('{') {
            let close = matching(code, j, '{', '}')?;
            return Some((j, close));
        }
        j += 1;
    }
    None
}

/// Collects `impl`/`trait` block ranges with their self types.
///
/// `impl Foo { .. }` and `impl Trait for Foo { .. }` both resolve to
/// `Foo`; `trait Bar { .. }` resolves to `Bar` (its method signatures
/// carry the trait's documented contracts).
fn collect_blocks(code: &[Token]) -> Vec<Block> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < code.len() {
        let is_impl = code[i].is_ident("impl");
        let is_trait = code[i].is_ident("trait")
            && code.get(i + 1).is_some_and(|t| t.kind == TokenKind::Ident);
        if !is_impl && !is_trait {
            i += 1;
            continue;
        }
        // Header runs to the block's `{` (or a `;` for `impl Trait for
        // Type;`-style marker impls, which have no body).
        let mut j = i + 1;
        while j < code.len() && !code[j].is_punct('{') && !code[j].is_punct(';') {
            j += 1;
        }
        if j >= code.len() || code[j].is_punct(';') {
            i = j.min(code.len());
            continue;
        }
        let Some(close) = matching(code, j, '{', '}') else {
            break;
        };
        let header = &code[i + 1..j];
        let self_ty = if is_trait {
            Some(code[i + 1].text.clone())
        } else {
            impl_self_type(header)
        };
        if let Some(self_ty) = self_ty {
            out.push(Block {
                open: j,
                close,
                self_ty,
            });
        }
        // Impl/trait blocks never nest; skip straight past the header so
        // the linear walk sees the body's nested items (fns) normally.
        i = j + 1;
        let _ = close;
    }
    out
}

/// Extracts the self type from an `impl` header (the tokens between
/// `impl` and `{`): the first identifier after `for` when present,
/// otherwise the first identifier at angle-bracket depth 0.
fn impl_self_type(header: &[Token]) -> Option<String> {
    if let Some(pos) = header.iter().position(|t| t.is_ident("for")) {
        return header[pos + 1..]
            .iter()
            .find(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text.clone());
    }
    let mut angle = 0i32;
    for t in header {
        if t.is_punct('<') {
            angle += 1;
        } else if t.is_punct('>') {
            angle -= 1;
        } else if angle == 0 && t.kind == TokenKind::Ident && t.text != "dyn" {
            return Some(t.text.clone());
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn items(src: &str) -> FileItems {
        parse_items(&lex(src)).1
    }

    #[test]
    fn free_and_impl_fns_are_qualified() {
        let it = items(
            "pub fn free() {}\n\
             struct Foo;\n\
             impl Foo { pub fn method(&self) {} fn private(&self) {} }\n\
             impl std::fmt::Display for Foo { fn fmt(&self) {} }\n\
             trait Chan { fn go(&self); }\n",
        );
        let quals: Vec<&str> = it.fns.iter().map(|f| f.qual.as_str()).collect();
        assert_eq!(
            quals,
            [
                "free",
                "Foo::method",
                "Foo::private",
                "Foo::fmt",
                "Chan::go"
            ]
        );
        assert!(it.fns[0].is_pub);
        assert!(it.fns[1].is_pub);
        assert!(!it.fns[2].is_pub);
        assert!(!it.fns[3].is_pub, "trait impl methods carry no `pub`");
        assert_eq!(it.types, ["Foo", "Chan"]);
    }

    #[test]
    fn pub_crate_is_not_public() {
        let it = items("pub(crate) fn internal() {}\npub const fn speedy() {}\n");
        assert!(!it.fns[0].is_pub);
        assert!(it.fns[1].is_pub, "modifiers between pub and fn are fine");
    }

    #[test]
    fn panics_doc_attaches_to_the_next_fn_only() {
        let it = items(
            "/// Does a thing.\n///\n/// # Panics\n///\n/// When empty.\npub fn documented() {}\n\
             pub fn bare() {}\n",
        );
        assert!(it.fns[0].has_panics_doc);
        assert!(!it.fns[1].has_panics_doc);
    }

    #[test]
    fn trait_signatures_have_no_body() {
        let it = items("trait T { fn sig(&self) -> usize; fn with_default(&self) -> usize { 1 } }");
        assert_eq!(it.fns[0].body, None);
        assert!(it.fns[1].body.is_some());
    }

    #[test]
    fn use_decls_collect_leaf_names() {
        let it = items("use crate::graph::{CallGraph, resolve};\nuse std::fmt;\n");
        assert!(it.uses.contains(&"CallGraph".to_string()));
        assert!(it.uses.contains(&"resolve".to_string()));
        assert!(it.uses.contains(&"fmt".to_string()));
    }

    #[test]
    fn fn_pointer_types_are_not_items() {
        let it = items("pub fn takes(f: fn(usize) -> u64) -> u64 { f(1) }");
        assert_eq!(it.fns.len(), 1);
        assert_eq!(it.fns[0].name, "takes");
    }
}

//! `leaky_lint`: the workspace's custom static-analysis pass.
//!
//! Every guarantee this reproduction makes — sweeps byte-identical at
//! any `--jobs N`, scheduling-independent per-cell seeds, (chain key,
//! profile key)-safe memo caches, committed goldens that pin every
//! spec — is a *determinism invariant*. This crate machine-checks those
//! invariants over the workspace source instead of trusting convention:
//!
//! * **determinism** — `wall-clock`, `ambient-rng`,
//!   `unordered-collections` in the crates that feed content keys,
//!   sweep output or goldens (`exp`, `bench`, `stats`, `core`, ...);
//! * **panic-freedom** — `panic-path`: no `pub` library function
//!   reaches a panicking construct, transitively through the
//!   [`graph`] call graph, without a `# Panics` contract on the entry
//!   point;
//! * **zero-cost-tracing** — `trace-zero-cost`: `TraceHook::emit`
//!   stays closure-form so the off-mode hot path builds nothing;
//! * **cache-keys** — `key-completeness`: configuration structs and
//!   their key/provenance functions stay field-complete;
//! * **cross-artifact** — `registry-docs`, `spec-goldens`,
//!   `bin-sources`, `schema-sync`: code, docs, goldens, manifests and
//!   schema version strings name the same things;
//! * **hygiene** — `stale-allow`: every escape suppresses something.
//!
//! The tool is self-contained (hand-rolled comment/string/raw-string
//! aware lexer, item parser and name-resolution call graph, no
//! dependencies) and runs as `cargo run -p leaky_lint -- check`.
//! Intentional exceptions are escaped per line with
//! `// lint: allow(<rule>)` (Rust) or `# lint: allow(<rule>)` (TOML);
//! reviewed findings can instead be pinned in the committed
//! `lint-baseline.json` ratchet (see [`baseline`]). `--format json`
//! emits a stable machine-readable document. See DESIGN.md §10 for the
//! invariant catalogue.
//!
//! # Examples
//!
//! ```no_run
//! use leaky_lint::{check_workspace, LintConfig};
//!
//! let diags = check_workspace(std::path::Path::new("."), &LintConfig::default())?;
//! for d in &diags {
//!     eprintln!("{d}");
//! }
//! assert!(diags.is_empty(), "workspace must be lint-clean");
//! # Ok::<(), leaky_lint::LintError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod baseline;
pub mod cli;
pub mod config;
pub mod diag;
pub mod graph;
pub mod lexer;
pub mod parse;
pub mod rules;
pub mod source;
pub mod workspace;

pub use config::{KeyPair, LintConfig};
pub use diag::Diagnostic;
pub use rules::{RuleInfo, RULES};
pub use workspace::{find_root, LintError, Workspace};

use std::path::Path;

/// Loads the workspace at `root` and runs every rule, returning the
/// surviving (non-escaped) diagnostics sorted by file and line.
///
/// # Errors
///
/// [`LintError`] when the workspace cannot be read.
pub fn check_workspace(root: &Path, cfg: &LintConfig) -> Result<Vec<Diagnostic>, LintError> {
    let ws = Workspace::load(root)?;
    Ok(rules::run_all(&ws, cfg))
}

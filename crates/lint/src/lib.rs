//! `leaky_lint`: the workspace's custom static-analysis pass.
//!
//! Every guarantee this reproduction makes — sweeps byte-identical at
//! any `--jobs N`, scheduling-independent per-cell seeds, (chain key,
//! profile key)-safe memo caches, committed goldens that pin every
//! spec — is a *determinism invariant*. This crate machine-checks those
//! invariants over the workspace source instead of trusting convention:
//!
//! * **determinism** — `wall-clock`, `ambient-rng`,
//!   `unordered-collections` in the crates that feed content keys,
//!   sweep output or goldens (`exp`, `bench`, `stats`, `core`);
//! * **panic-freedom** — `panic`: library code surfaces failures as
//!   values;
//! * **cache-keys** — `key-completeness`: configuration structs and
//!   their key/provenance functions stay field-complete;
//! * **cross-artifact** — `registry-docs`, `spec-goldens`,
//!   `bin-sources`: code, docs, goldens and manifests name the same
//!   things.
//!
//! The tool is self-contained (hand-rolled comment/string/raw-string
//! aware lexer, no dependencies) and runs as
//! `cargo run -p leaky_lint -- check`. Intentional exceptions are
//! escaped per line with `// lint: allow(<rule>)` (Rust) or
//! `# lint: allow(<rule>)` (TOML); see DESIGN.md §10 for the invariant
//! catalogue.
//!
//! # Examples
//!
//! ```no_run
//! use leaky_lint::{check_workspace, LintConfig};
//!
//! let diags = check_workspace(std::path::Path::new("."), &LintConfig::default())?;
//! for d in &diags {
//!     eprintln!("{d}");
//! }
//! assert!(diags.is_empty(), "workspace must be lint-clean");
//! # Ok::<(), leaky_lint::LintError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod cli;
pub mod config;
pub mod diag;
pub mod lexer;
pub mod rules;
pub mod source;
pub mod workspace;

pub use config::{KeyPair, LintConfig};
pub use diag::Diagnostic;
pub use rules::{RuleInfo, RULES};
pub use workspace::{find_root, LintError, Workspace};

use std::path::Path;

/// Loads the workspace at `root` and runs every rule, returning the
/// surviving (non-escaped) diagnostics sorted by file and line.
///
/// # Errors
///
/// [`LintError`] when the workspace cannot be read.
pub fn check_workspace(root: &Path, cfg: &LintConfig) -> Result<Vec<Diagnostic>, LintError> {
    let ws = Workspace::load(root)?;
    Ok(rules::run_all(&ws, cfg))
}

//! The rule families and the catalogue the CLI prints.

pub mod determinism;
pub mod keys;
pub mod panics;
pub mod sync;

use crate::config::LintConfig;
use crate::diag::Diagnostic;
use crate::workspace::Workspace;

/// One catalogue row: rule name plus what it protects.
#[derive(Debug, Clone, Copy)]
pub struct RuleInfo {
    /// Stable rule name (the `lint: allow(<name>)` vocabulary).
    pub name: &'static str,
    /// Rule family, as in DESIGN.md §10.
    pub family: &'static str,
    /// One-line description of the protected invariant.
    pub description: &'static str,
}

/// Every rule, in family order. `leaky_lint rules` prints this table;
/// DESIGN.md §10 documents the rationale per row.
pub const RULES: [RuleInfo; 8] = [
    RuleInfo {
        name: "wall-clock",
        family: "determinism",
        description: "no Instant::now()/SystemTime in crates feeding content keys, sweep output or goldens",
    },
    RuleInfo {
        name: "ambient-rng",
        family: "determinism",
        description: "no thread_rng/RandomState/rand::random — randomness flows from derived per-cell seeds",
    },
    RuleInfo {
        name: "unordered-collections",
        family: "determinism",
        description: "no HashMap/HashSet in determinism-critical crates — use BTree collections or sort",
    },
    RuleInfo {
        name: "panic",
        family: "panic-freedom",
        description: "no unwrap/expect/panic!/todo!/unimplemented! in library code outside #[cfg(test)]",
    },
    RuleInfo {
        name: "key-completeness",
        family: "cache-keys",
        description: "every field of FrontendGeometry/CostModel/FrontendConfig/ChannelParams reaches its key/provenance function",
    },
    RuleInfo {
        name: "registry-docs",
        family: "cross-artifact",
        description: "every channels::REGISTRY entry is documented in EXPERIMENTS.md",
    },
    RuleInfo {
        name: "spec-goldens",
        family: "cross-artifact",
        description: "every Experiment spec has a committed golden under crates/bench/tests/golden/",
    },
    RuleInfo {
        name: "bin-sources",
        family: "cross-artifact",
        description: "every [[bin]] has a source file and every src/bin/*.rs is declared",
    },
];

/// Runs every rule over the loaded workspace and returns the surviving
/// (non-escaped) diagnostics, sorted by file, line and rule.
pub fn run_all(ws: &Workspace, cfg: &LintConfig) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    determinism::check(ws, cfg, &mut diags);
    panics::check(ws, &mut diags);
    keys::check(ws, cfg, &mut diags);
    sync::check(ws, cfg, &mut diags);
    diags.retain(|d| !is_escaped(ws, d));
    diags.sort();
    diags.dedup();
    diags
}

/// Whether a `lint: allow(<rule>)` escape suppresses `d` — in the
/// source file or manifest the diagnostic anchors to.
fn is_escaped(ws: &Workspace, d: &Diagnostic) -> bool {
    if let Some(file) = ws.files.get(&d.file) {
        return file.is_allowed(d.rule, d.line);
    }
    if let Some(manifest) = ws.manifests.get(&d.file) {
        return manifest.is_allowed(d.rule, d.line);
    }
    false
}

//! The rule families and the catalogue the CLI prints.

pub mod allows;
pub mod determinism;
pub mod keys;
pub mod panics;
pub mod scenario;
pub mod schema;
pub mod sync;
pub mod zero_cost;

use crate::config::LintConfig;
use crate::diag::Diagnostic;
use crate::graph::CallGraph;
use crate::source::SourceFile;
use crate::workspace::Workspace;

/// One catalogue row: rule name plus what it protects.
#[derive(Debug, Clone, Copy)]
pub struct RuleInfo {
    /// Stable rule name (the `lint: allow(<name>)` vocabulary).
    pub name: &'static str,
    /// Rule family, as in DESIGN.md §10.
    pub family: &'static str,
    /// One-line description of the protected invariant.
    pub description: &'static str,
}

/// Every rule, in family order. `leaky_lint rules` prints this table;
/// DESIGN.md §10 documents the rationale per row.
pub const RULES: [RuleInfo; 12] = [
    RuleInfo {
        name: "wall-clock",
        family: "determinism",
        description: "no Instant::now()/SystemTime in crates feeding content keys, sweep output or goldens",
    },
    RuleInfo {
        name: "ambient-rng",
        family: "determinism",
        description: "no thread_rng/RandomState/rand::random — randomness flows from derived per-cell seeds",
    },
    RuleInfo {
        name: "unordered-collections",
        family: "determinism",
        description: "no HashMap/HashSet in determinism-critical crates — use BTree collections or sort",
    },
    RuleInfo {
        name: "panic-path",
        family: "panic-freedom",
        description: "no pub library fn reaches unwrap/expect/panic! without a # Panics doc on the entry point (call graph, transitive)",
    },
    RuleInfo {
        name: "trace-zero-cost",
        family: "zero-cost-tracing",
        description: "TraceHook::emit takes a closure and TraceEvent is only built inside emit closure arguments",
    },
    RuleInfo {
        name: "key-completeness",
        family: "cache-keys",
        description: "every field of FrontendGeometry/CostModel/FrontendConfig/ChannelParams reaches its key/provenance function",
    },
    RuleInfo {
        name: "registry-docs",
        family: "cross-artifact",
        description: "every channels::REGISTRY entry is documented in EXPERIMENTS.md",
    },
    RuleInfo {
        name: "spec-goldens",
        family: "cross-artifact",
        description: "every Experiment spec has a committed golden under crates/bench/tests/golden/",
    },
    RuleInfo {
        name: "bin-sources",
        family: "cross-artifact",
        description: "every [[bin]] has a source file and every src/bin/*.rs is declared",
    },
    RuleInfo {
        name: "schema-sync",
        family: "cross-artifact",
        description: "every leaky-frontends/<name>/vN schema string is one shared const; code and docs reference it",
    },
    RuleInfo {
        name: "scenario-files",
        family: "cross-artifact",
        description: "every committed scenarios/*.toml declares a defined schema const, a valid kind, and is documented",
    },
    RuleInfo {
        name: "stale-allow",
        family: "hygiene",
        description: "every lint: allow(<rule>) escape suppresses at least one diagnostic and names a real rule",
    },
];

/// Runs every rule over the loaded workspace and returns the surviving
/// (non-escaped) diagnostics, sorted by file, line and rule.
pub fn run_all(ws: &Workspace, cfg: &LintConfig) -> Vec<Diagnostic> {
    let files: Vec<&SourceFile> = ws.files.values().collect();
    let graph = CallGraph::build(&files);

    let mut diags = Vec::new();
    determinism::check(ws, cfg, &mut diags);
    let used_site_allows = panics::check(&files, &graph, &mut diags);
    zero_cost::check(ws, &mut diags);
    keys::check(ws, cfg, &mut diags);
    sync::check(ws, cfg, &mut diags);
    schema::check(ws, cfg, &mut diags);
    scenario::check(ws, cfg, &mut diags);

    // The stale-allow audit runs over the *raw* diagnostics — an escape
    // is live exactly when it would suppress one of them (or absorbed a
    // panic site during reachability).
    let mut stale = Vec::new();
    allows::check(ws, &diags, &used_site_allows, &mut stale);
    diags.append(&mut stale);

    diags.retain(|d| !is_escaped(ws, d));
    diags.sort();
    diags.dedup();
    diags
}

/// Whether a `lint: allow(<rule>)` escape suppresses `d` — in the
/// source file or manifest the diagnostic anchors to.
fn is_escaped(ws: &Workspace, d: &Diagnostic) -> bool {
    if let Some(file) = ws.files.get(&d.file) {
        return file.is_allowed(d.rule, d.line);
    }
    if let Some(manifest) = ws.manifests.get(&d.file) {
        return manifest.is_allowed(d.rule, d.line);
    }
    false
}

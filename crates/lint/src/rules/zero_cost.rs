//! Zero-cost-tracing rule (`trace-zero-cost`): the off-mode trace path
//! must stay one branch, structurally.
//!
//! PR 8's `TraceHook::emit` takes a *closure* so that `TraceHook::Off`
//! never constructs an event (the ≤2% off-mode tax pinned by
//! `perf_report`). That invariant is one refactor away from silently
//! regressing — `let ev = TraceEvent::...; hook.emit(move || ev)` builds
//! the event eagerly and type-checks fine. This rule pins the idiom:
//!
//! * every `.emit(` call site must pass a closure (`||` or `move ||`)
//!   as its first argument;
//! * `TraceEvent::` constructor paths may appear only *inside* an
//!   `emit` closure argument.
//!
//! `crates/trace` itself is exempt (it defines, folds and renders
//! events), as are `#[cfg(test)]` lines and *pattern* positions
//! (`match`/`if let` arms consume already-built events — e.g. the
//! bench debug renderer — and cost nothing on the hot path).

use crate::diag::Diagnostic;
use crate::lexer::TokenKind;
use crate::source::{matching, SourceFile};
use crate::workspace::Workspace;

/// Flags eager event construction and non-closure `emit` calls.
pub fn check(ws: &Workspace, diags: &mut Vec<Diagnostic>) {
    for file in ws.files.values() {
        if file.crate_dir.as_deref() == Some("trace") {
            continue;
        }
        check_file(file, diags);
    }
}

fn check_file(file: &SourceFile, diags: &mut Vec<Diagnostic>) {
    let code = &file.code;
    // Token ranges of well-formed `emit(...)` argument lists; event
    // construction inside them is the blessed idiom.
    let mut closure_ranges: Vec<(usize, usize)> = Vec::new();

    for (i, tok) in code.iter().enumerate() {
        if !tok.is_ident("emit")
            || i == 0
            || !code[i - 1].is_punct('.')
            || !code.get(i + 1).is_some_and(|t| t.is_punct('('))
        {
            continue;
        }
        let open = i + 1;
        let Some(close) = matching(code, open, '(', ')') else {
            continue;
        };
        let first = code.get(open + 1);
        let is_closure = first.is_some_and(|t| t.is_punct('|') || t.is_ident("move"));
        if is_closure {
            closure_ranges.push((open, close));
        } else if !file.is_test_line(tok.line) {
            diags.push(Diagnostic::new(
                &file.rel_path,
                tok.line,
                "trace-zero-cost",
                "`.emit(..)` must take a closure (`emit(|| TraceEvent::..)`) so the \
                 off-mode path builds nothing"
                    .to_string(),
            ));
        }
    }

    for (i, tok) in code.iter().enumerate() {
        if !tok.is_ident("TraceEvent")
            || !code.get(i + 1).is_some_and(|t| t.is_punct(':'))
            || !code.get(i + 2).is_some_and(|t| t.is_punct(':'))
        {
            continue;
        }
        if file.is_test_line(tok.line) {
            continue;
        }
        if closure_ranges.iter().any(|&(a, b)| a < i && i < b) {
            continue;
        }
        if is_pattern_position(code, i) {
            continue;
        }
        diags.push(Diagnostic::new(
            &file.rel_path,
            tok.line,
            "trace-zero-cost",
            "`TraceEvent` constructed outside an `emit(|| ..)` closure argument: \
             move construction into the closure so off-mode pays one branch"
                .to_string(),
        ));
    }
}

/// Whether the `TraceEvent::Variant { .. }` path starting at `i` sits in
/// *pattern* position (a `match` arm or `if let`/`while let` binding)
/// rather than constructing an event. Detected by what follows the
/// variant's balanced braces/parens: patterns continue with `=>`, `=`,
/// a match-arm guard `if`, or an or-pattern `|` — none of which can
/// follow a struct-literal expression.
fn is_pattern_position(code: &[crate::lexer::Token], i: usize) -> bool {
    // Skip `TraceEvent :: Variant`.
    let mut j = i + 3;
    if code.get(j).is_some_and(|t| t.kind == TokenKind::Ident) {
        j += 1;
    }
    // Skip one balanced `{..}` or `(..)` payload, if present.
    for (open, close) in [('{', '}'), ('(', ')')] {
        if code.get(j).is_some_and(|t| t.is_punct(open)) {
            match matching(code, j, open, close) {
                Some(end) => j = end + 1,
                None => return false,
            }
            break;
        }
    }
    match code.get(j) {
        Some(t) => t.is_punct('=') || t.is_punct('|') || t.is_ident("if"),
        None => false,
    }
}

//! Cache-key completeness rule: every field of a configuration struct
//! must be consumed by the function that derives its cache key (or
//! serializes its identity into sweep provenance).
//!
//! This is a structural check over the token streams: the struct's
//! field names are extracted from its declaration, and each must appear
//! as an identifier inside the key function's body. A field the key
//! function never mentions is exactly the stale-memo hazard PR 4 fixed
//! — caches keyed on an incomplete fingerprint serve results computed
//! under a different configuration.
//!
//! A missing struct or function is itself a violation (config drift):
//! renaming `profile_key` must not silently disable the check.

use crate::config::{KeyPair, LintConfig};
use crate::diag::Diagnostic;
use crate::lexer::{Token, TokenKind};
use crate::source::matching;
use crate::workspace::Workspace;

/// Runs every configured [`KeyPair`] obligation.
pub fn check(ws: &Workspace, cfg: &LintConfig, diags: &mut Vec<Diagnostic>) {
    for pair in &cfg.key_pairs {
        check_pair(ws, pair, diags);
    }
}

fn check_pair(ws: &Workspace, pair: &KeyPair, diags: &mut Vec<Diagnostic>) {
    let Some(struct_file) = ws.files.get(pair.struct_file) else {
        diags.push(Diagnostic::new(
            pair.struct_file,
            1,
            "key-completeness",
            format!(
                "configured struct file missing: cannot check `{}` (config drift?)",
                pair.struct_name
            ),
        ));
        return;
    };
    let Some(fields) = struct_fields(&struct_file.code, pair.struct_name) else {
        diags.push(Diagnostic::new(
            pair.struct_file,
            1,
            "key-completeness",
            format!(
                "struct `{}` not found in {} (config drift?)",
                pair.struct_name, pair.struct_file
            ),
        ));
        return;
    };
    let Some(fn_file) = ws.files.get(pair.fn_file) else {
        diags.push(Diagnostic::new(
            pair.fn_file,
            1,
            "key-completeness",
            format!(
                "configured key-function file missing: cannot check `{}` (config drift?)",
                pair.fn_name
            ),
        ));
        return;
    };
    let Some((fn_line, body)) = fn_body(&fn_file.code, pair.fn_name, pair.impl_for) else {
        diags.push(Diagnostic::new(
            pair.fn_file,
            1,
            "key-completeness",
            format!(
                "key function `{}` not found in {} (config drift?)",
                pair.fn_name, pair.fn_file
            ),
        ));
        return;
    };
    for (field, _line) in fields {
        let consumed = body
            .iter()
            .any(|t| t.kind == TokenKind::Ident && t.text == field);
        if !consumed {
            diags.push(Diagnostic::new(
                pair.fn_file,
                fn_line,
                "key-completeness",
                format!(
                    "`{}::{}` is not consumed by `{}` ({}): a cache keyed on this \
                     function cannot distinguish configurations differing in `{field}`",
                    pair.struct_name, field, pair.fn_name, pair.role
                ),
            ));
        }
    }
}

/// Field names (with declaration lines) of `struct name { ... }`.
/// Returns `None` when the struct is absent or not brace-style.
fn struct_fields(code: &[Token], name: &str) -> Option<Vec<(String, u32)>> {
    let mut i = 0;
    while i + 1 < code.len() {
        if code[i].is_ident("struct") && code[i + 1].is_ident(name) {
            // Find the opening brace (skipping generics — none of the
            // checked structs have any, but `<...>` would pass through
            // here harmlessly).
            let mut j = i + 2;
            while j < code.len() && !code[j].is_punct('{') {
                if code[j].is_punct(';') || code[j].is_punct('(') {
                    return None; // unit or tuple struct: unsupported
                }
                j += 1;
            }
            let close = matching(code, j, '{', '}')?;
            return Some(fields_in(&code[j..=close]));
        }
        i += 1;
    }
    None
}

/// Field idents at brace depth 1 of a struct body (attributes skipped).
fn fields_in(body: &[Token]) -> Vec<(String, u32)> {
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut i = 0;
    while i < body.len() {
        let tok = &body[i];
        if tok.is_punct('{') {
            depth += 1;
        } else if tok.is_punct('}') {
            depth -= 1;
        } else if tok.is_punct('#') && body.get(i + 1).is_some_and(|t| t.is_punct('[')) {
            if let Some(close) = matching(body, i + 1, '[', ']') {
                i = close + 1;
                continue;
            }
        } else if depth == 1
            && tok.kind == TokenKind::Ident
            && body.get(i + 1).is_some_and(|t| t.is_punct(':'))
            && !body.get(i + 2).is_some_and(|t| t.is_punct(':'))
            && (i == 0 || !body[i - 1].is_punct(':'))
        {
            out.push((tok.text.clone(), tok.line));
        }
        i += 1;
    }
    out
}

/// Locates `fn name` (optionally inside the `impl` block whose header
/// mentions `impl_for`) and returns its declaration line plus body
/// tokens.
fn fn_body<'a>(
    code: &'a [Token],
    name: &str,
    impl_for: Option<&str>,
) -> Option<(u32, &'a [Token])> {
    match impl_for {
        None => fn_body_in(code, name),
        Some(ty) => {
            let mut i = 0;
            while i < code.len() {
                if code[i].is_ident("impl") {
                    // Header runs to the block's opening brace.
                    let mut j = i + 1;
                    while j < code.len() && !code[j].is_punct('{') {
                        j += 1;
                    }
                    let header_hits = code[i + 1..j]
                        .iter()
                        .any(|t| t.kind == TokenKind::Ident && t.text == ty);
                    if header_hits {
                        if let Some(close) = matching(code, j, '{', '}') {
                            if let Some(found) = fn_body_in(&code[j..=close], name) {
                                return Some(found);
                            }
                            i = close + 1;
                            continue;
                        }
                    }
                    i = j;
                    continue;
                }
                i += 1;
            }
            None
        }
    }
}

/// First `fn name { ... }` in `code`; body = tokens between its braces.
fn fn_body_in<'a>(code: &'a [Token], name: &str) -> Option<(u32, &'a [Token])> {
    let mut i = 0;
    while i + 1 < code.len() {
        if code[i].is_ident("fn") && code[i + 1].is_ident(name) {
            // Body starts at the first `{` at paren depth 0 after the
            // signature (parameter lists and return types carry parens,
            // never braces, in this workspace's style).
            let mut j = i + 2;
            let mut paren = 0i32;
            while j < code.len() {
                if code[j].is_punct('(') {
                    paren += 1;
                } else if code[j].is_punct(')') {
                    paren -= 1;
                } else if code[j].is_punct('{') && paren == 0 {
                    let close = matching(code, j, '{', '}')?;
                    return Some((code[i].line, &code[j..=close]));
                }
                j += 1;
            }
            return None;
        }
        i += 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn fields_are_extracted_with_attributes_skipped() {
        let code =
            lex("pub struct G { pub a: usize, #[doc = \"x: y\"] pub b: Vec<(u8, u8)>, c: T }");
        let fields = struct_fields(&code, "G").expect("struct found");
        let names: Vec<_> = fields.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["a", "b", "c"]);
    }

    #[test]
    fn fn_resolution_disambiguates_by_impl_block() {
        let src = "
impl A { pub fn key(&self) -> u64 { self.x } }
impl B { pub fn key(&self) -> u64 { self.y } }
";
        let code = lex(src);
        let (_, body_a) = fn_body(&code, "key", Some("A")).expect("A::key");
        assert!(body_a.iter().any(|t| t.is_ident("x")));
        let (_, body_b) = fn_body(&code, "key", Some("B")).expect("B::key");
        assert!(body_b.iter().any(|t| t.is_ident("y")));
    }

    #[test]
    fn nested_field_braces_do_not_leak_fields() {
        // Methods in an impl block are not fields; only depth-1 `x:` hits.
        let code = lex("struct S { a: fmt::Formatter<'static>, b: u8 }");
        let fields = struct_fields(&code, "S").expect("struct found");
        let names: Vec<_> = fields.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["a", "b"]);
    }
}

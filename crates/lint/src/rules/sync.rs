//! Cross-artifact sync rules: the code, the docs and the committed
//! goldens must name the same things.
//!
//! * `registry-docs` — every `channels::REGISTRY` entry is documented
//!   in EXPERIMENTS.md (an undocumented channel is invisible to users
//!   of the sweep CLI).
//! * `spec-goldens` — every registered `Experiment` spec has a
//!   committed golden under `crates/bench/tests/golden/` (a spec
//!   without a golden has no determinism pin).
//! * `bin-sources` — every `[[bin]]` in a crate manifest points at an
//!   existing source file, and every `src/bin/*.rs` is declared (this
//!   workspace declares all binary targets explicitly).

use crate::config::LintConfig;
use crate::diag::Diagnostic;
use crate::lexer::TokenKind;
use crate::workspace::Workspace;

/// Runs all three sync rules.
pub fn check(ws: &Workspace, cfg: &LintConfig, diags: &mut Vec<Diagnostic>) {
    registry_docs(ws, cfg, diags);
    spec_goldens(ws, cfg, diags);
    bin_sources(ws, diags);
}

/// `registry-docs`: REGISTRY rows (`name: "..."` in the registry file)
/// must each appear in the docs file.
fn registry_docs(ws: &Workspace, cfg: &LintConfig, diags: &mut Vec<Diagnostic>) {
    let Some(file) = ws.files.get(cfg.registry_file) else {
        diags.push(Diagnostic::new(
            cfg.registry_file,
            1,
            "registry-docs",
            "channel registry file missing (config drift?)".into(),
        ));
        return;
    };
    let docs = ws.read_artifact(cfg.docs_file);
    let code = &file.code;
    let mut rows = 0usize;
    for (i, tok) in code.iter().enumerate() {
        // A registry row field: `name: "literal"` in non-test code. The
        // struct *declaration* (`name: &'static str`) follows the colon
        // with punctuation, so only data rows match.
        let is_row = tok.is_ident("name")
            && !file.is_test_line(tok.line)
            && code.get(i + 1).is_some_and(|t| t.is_punct(':'))
            && code
                .get(i + 2)
                .is_some_and(|t| t.kind == TokenKind::Literal);
        if !is_row {
            continue;
        }
        rows += 1;
        let channel = &code[i + 2].text;
        let documented = docs
            .as_deref()
            .is_some_and(|d| d.contains(channel.as_str()));
        if !documented {
            diags.push(Diagnostic::new(
                &file.rel_path,
                tok.line,
                "registry-docs",
                format!(
                    "channel `{channel}` is registered but never mentioned in {}",
                    cfg.docs_file
                ),
            ));
        }
    }
    if rows == 0 {
        diags.push(Diagnostic::new(
            &file.rel_path,
            1,
            "registry-docs",
            "no `name: \"...\"` registry rows found (config drift?)".into(),
        ));
    }
}

/// `spec-goldens`: every `fn name` of an experiment spec returns a
/// string literal; `<golden_dir>/<that string>.txt` must exist.
fn spec_goldens(ws: &Workspace, cfg: &LintConfig, diags: &mut Vec<Diagnostic>) {
    let prefix = format!("{}/", cfg.experiments_dir);
    let mut specs = 0usize;
    for (rel, file) in &ws.files {
        if !rel.starts_with(&prefix) {
            continue;
        }
        let code = &file.code;
        for (i, tok) in code.iter().enumerate() {
            let is_name_fn = tok.is_ident("fn")
                && !file.is_test_line(tok.line)
                && code.get(i + 1).is_some_and(|t| t.is_ident("name"));
            if !is_name_fn {
                continue;
            }
            // First string literal after the signature is the spec name
            // (`fn name(&self) -> &'static str { "tab3_all_channels" }`).
            let Some(name_tok) = code[i + 2..].iter().take(16).find(|t| {
                t.kind == TokenKind::Literal && !t.text.chars().all(|c| c.is_ascii_digit())
            }) else {
                continue;
            };
            specs += 1;
            let golden = format!("{}/{}.txt", cfg.golden_dir, name_tok.text);
            if !ws.artifact_exists(&golden) {
                diags.push(Diagnostic::new(
                    rel,
                    tok.line,
                    "spec-goldens",
                    format!(
                        "experiment spec `{}` has no committed golden at {golden}: without \
                         one, nothing pins its output bytes",
                        name_tok.text
                    ),
                ));
            }
        }
    }
    if specs == 0 {
        diags.push(Diagnostic::new(
            cfg.experiments_dir,
            1,
            "spec-goldens",
            "no experiment specs found (config drift?)".into(),
        ));
    }
}

/// `bin-sources`: manifests and `src/bin/` trees agree.
fn bin_sources(ws: &Workspace, diags: &mut Vec<Diagnostic>) {
    for (rel, manifest) in &ws.manifests {
        let crate_prefix = rel.trim_end_matches("Cargo.toml");
        for bin in &manifest.bins {
            let display = bin.name.as_deref().unwrap_or("<unnamed>");
            let Some(path) = &bin.path else {
                diags.push(Diagnostic::new(
                    rel,
                    bin.line,
                    "bin-sources",
                    format!("[[bin]] `{display}` has no explicit `path` (declare it)"),
                ));
                continue;
            };
            let full = format!("{crate_prefix}{path}");
            if !ws.artifact_exists(&full) {
                diags.push(Diagnostic::new(
                    rel,
                    bin.line,
                    "bin-sources",
                    format!("[[bin]] `{display}` points at missing source {full}"),
                ));
            }
        }
    }
    // Reverse direction: every src/bin/*.rs must be declared.
    for (rel, _) in ws.files.iter() {
        let Some(idx) = rel.find("/src/bin/") else {
            continue;
        };
        let manifest_rel = format!("{}/Cargo.toml", &rel[..idx]);
        let bin_path = &rel[idx + 1..]; // "src/bin/foo.rs"
        let declared = ws
            .manifests
            .get(&manifest_rel)
            .is_some_and(|m| m.bins.iter().any(|b| b.path.as_deref() == Some(bin_path)));
        if !declared {
            diags.push(Diagnostic::new(
                rel,
                1,
                "bin-sources",
                format!("binary source {rel} is not declared as a [[bin]] in {manifest_rel}"),
            ));
        }
    }
}

//! Scenario-file drift rule (`scenario-files`): the committed scenario
//! library stays in sync with the code and the docs.
//!
//! Scenario files are *data* — `cargo build` never reads them, so a
//! schema bump, a renamed kind, or a file added without documentation
//! would otherwise only surface when someone runs the sweep CLI. For
//! every `.toml` under the configured scenario directory this rule
//! requires:
//!
//! * a top-level `schema = "..."` declaration whose value is one of the
//!   workspace's defined schema constants (the same constant set the
//!   `schema-sync` rule maintains — a file cannot pin a tag the code
//!   does not define);
//! * a top-level `kind = "profile"` or `kind = "scenario"` declaration;
//! * a mention of the file's name in the experiments documentation, so
//!   the committed library and its walkthrough cannot drift apart.
//!
//! Only the top-level header (before the first `[table]`) is scanned —
//! full validation is the `leaky_scenario` parser's job (exercised by
//! `leaky_sweep --scenario FILE --validate` in CI); this rule is the
//! cheap cross-artifact tripwire that runs with every lint pass.

use std::fs;

use crate::config::LintConfig;
use crate::diag::Diagnostic;
use crate::rules::schema::schema_const_definitions;
use crate::workspace::Workspace;

/// Checks every committed scenario file's header and documentation.
pub fn check(ws: &Workspace, cfg: &LintConfig, diags: &mut Vec<Diagnostic>) {
    let dir = ws.root.join(cfg.scenario_dir);
    let Ok(entries) = fs::read_dir(&dir) else {
        // Fixture workspaces without a scenario library have nothing to
        // drift.
        return;
    };
    let mut paths: Vec<_> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "toml"))
        .collect();
    paths.sort();

    let defined = schema_const_definitions(ws);
    let docs = ws.read_artifact(cfg.docs_file).unwrap_or_default();

    for path in paths {
        let Some(file_name) = path.file_name().map(|n| n.to_string_lossy().into_owned()) else {
            continue;
        };
        let rel = format!("{}/{file_name}", cfg.scenario_dir);
        let Ok(text) = fs::read_to_string(&path) else {
            diags.push(Diagnostic::new(
                &rel,
                1,
                "scenario-files",
                "scenario file exists but cannot be read as UTF-8".to_string(),
            ));
            continue;
        };

        match header_value(&text, "schema") {
            None => diags.push(Diagnostic::new(
                &rel,
                1,
                "scenario-files",
                "missing top-level `schema = \"...\"` declaration".to_string(),
            )),
            Some((line, value)) if !defined.contains_key(&value) => {
                diags.push(Diagnostic::new(
                    &rel,
                    line,
                    "scenario-files",
                    format!(
                        "declares schema \"{value}\", which matches no `const` definition \
                         in the workspace (drifted or mistyped)"
                    ),
                ));
            }
            Some(_) => {}
        }

        match header_value(&text, "kind") {
            None => diags.push(Diagnostic::new(
                &rel,
                1,
                "scenario-files",
                "missing top-level `kind = \"profile\"` or `kind = \"scenario\"` declaration"
                    .to_string(),
            )),
            Some((line, value)) if value != "profile" && value != "scenario" => {
                diags.push(Diagnostic::new(
                    &rel,
                    line,
                    "scenario-files",
                    format!("kind must be \"profile\" or \"scenario\", got \"{value}\""),
                ));
            }
            Some(_) => {}
        }

        if !docs.contains(&file_name) {
            diags.push(Diagnostic::new(
                &rel,
                1,
                "scenario-files",
                format!(
                    "{rel} is not mentioned in {} (document the scenario library)",
                    cfg.docs_file
                ),
            ));
        }
    }
}

/// Finds `key = "value"` in the file's top-level header (before the
/// first `[table]`), returning the 1-based line and the string value.
fn header_value(text: &str, key: &str) -> Option<(u32, String)> {
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.starts_with('[') {
            return None;
        }
        if line.starts_with('#') {
            continue;
        }
        let Some(rest) = line.strip_prefix(key) else {
            continue;
        };
        let rest = rest.trim_start();
        let Some(rest) = rest.strip_prefix('=') else {
            continue;
        };
        let rest = rest.trim_start();
        let Some(rest) = rest.strip_prefix('"') else {
            continue;
        };
        let end = rest.find('"')?;
        return Some((idx as u32 + 1, rest[..end].to_owned()));
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_scan_stops_at_the_first_table() {
        let text = "# comment\nschema = \"a/b/v1\"\nkind = \"profile\"\n\n[profile]\nkey = \"x\"\n";
        assert_eq!(header_value(text, "schema"), Some((2, "a/b/v1".into())));
        assert_eq!(header_value(text, "kind"), Some((3, "profile".into())));
        assert_eq!(header_value(text, "key"), None);
    }

    #[test]
    fn header_scan_requires_a_string_assignment() {
        assert_eq!(header_value("schema = 3\n", "schema"), None);
        assert_eq!(header_value("schemata = \"x\"\n", "schema"), None);
    }
}

//! Schema-sync rule (`schema-sync`): every `leaky-frontends/<name>/vN`
//! version string resolves to exactly one shared constant.
//!
//! The sweep renderer, the trace telemetry objects and this linter's
//! own JSON output all embed versioned schema tags. A tag that exists
//! as scattered string literals can drift — producer bumps to `v2`,
//! parser keeps accepting `v1`, docs advertise a string nobody emits.
//! This rule enforces, per distinct schema value found in non-test
//! code:
//!
//! * exactly one `const NAME: &str = "..."` *definition*;
//! * zero raw literal occurrences outside that definition (code must
//!   reference the constant, e.g. via `{SCHEMA}` format captures);
//!
//! and, over the configured documentation files, that every
//! `leaky-frontends/...` string mentioned matches a defined constant's
//! value (docs may not advertise tags the code does not emit).
//! `#[cfg(test)]` lines are exempt: tests deliberately pin raw bytes.

use std::collections::{BTreeMap, BTreeSet};

use crate::config::LintConfig;
use crate::diag::Diagnostic;
use crate::lexer::TokenKind;
use crate::workspace::Workspace;

/// The prefix that marks a versioned schema tag in this workspace.
const SCHEMA_PREFIX: &str = "leaky-frontends/";

/// Every schema-tag `const` definition in non-test code: value →
/// definition sites, in walk order. Shared with the `scenario-files`
/// rule, which validates committed scenario files against the same
/// constant set.
pub(crate) fn schema_const_definitions(ws: &Workspace) -> BTreeMap<String, Vec<(String, u32)>> {
    let mut defs: BTreeMap<String, Vec<(String, u32)>> = BTreeMap::new();
    for file in ws.files.values() {
        let code = &file.code;
        for (i, tok) in code.iter().enumerate() {
            if tok.kind != TokenKind::Literal || !is_schema_tag(&tok.text) {
                continue;
            }
            if file.is_test_line(tok.line) {
                continue;
            }
            if is_const_definition(code, i) {
                defs.entry(tok.text.clone())
                    .or_default()
                    .push((file.rel_path.clone(), tok.line));
            }
        }
    }
    defs
}

/// Checks schema-string discipline across code and docs.
pub fn check(ws: &Workspace, cfg: &LintConfig, diags: &mut Vec<Diagnostic>) {
    // value → definition sites / raw-literal sites, in walk order.
    let defs = schema_const_definitions(ws);
    let mut raws: BTreeMap<String, Vec<(String, u32)>> = BTreeMap::new();

    for file in ws.files.values() {
        let code = &file.code;
        for (i, tok) in code.iter().enumerate() {
            if tok.kind != TokenKind::Literal || !is_schema_tag(&tok.text) {
                continue;
            }
            if file.is_test_line(tok.line) {
                continue;
            }
            if !is_const_definition(code, i) {
                raws.entry(tok.text.clone())
                    .or_default()
                    .push((file.rel_path.clone(), tok.line));
            }
        }
    }

    for (value, sites) in &raws {
        let suggestion = if defs.contains_key(value) {
            "reference the shared constant instead"
        } else {
            "hoist it into a shared `pub const` and reference that"
        };
        for (file, line) in sites {
            diags.push(Diagnostic::new(
                file,
                *line,
                "schema-sync",
                format!("raw schema literal \"{value}\": {suggestion}"),
            ));
        }
    }
    for (value, sites) in &defs {
        for (file, line) in sites.iter().skip(1) {
            diags.push(Diagnostic::new(
                file,
                *line,
                "schema-sync",
                format!(
                    "duplicate `const` definition of schema \"{value}\" (first defined in {}); \
                     re-export the original instead",
                    sites[0].0
                ),
            ));
        }
    }

    // Docs drift: every schema-looking string in the doc set must match
    // a defined constant's value.
    let defined: BTreeSet<&str> = defs.keys().map(String::as_str).collect();
    for doc in &cfg.schema_docs {
        let Some(text) = ws.read_artifact(doc) else {
            continue;
        };
        for (idx, line) in text.lines().enumerate() {
            for tag in schema_tags_in(line) {
                if !defined.contains(tag) {
                    diags.push(Diagnostic::new(
                        *doc,
                        idx as u32 + 1,
                        "schema-sync",
                        format!(
                            "documented schema string \"{tag}\" matches no `const` definition \
                             in the workspace (drifted or mistyped)"
                        ),
                    ));
                }
            }
        }
    }
}

/// Whether `text` has the `leaky-frontends/<name>/v<digits>` shape.
fn is_schema_tag(text: &str) -> bool {
    let Some(rest) = text.strip_prefix(SCHEMA_PREFIX) else {
        return false;
    };
    let Some((name, version)) = rest.split_once('/') else {
        return false;
    };
    let Some(digits) = version.strip_prefix('v') else {
        return false;
    };
    !name.is_empty()
        && name.chars().all(|c| c.is_ascii_lowercase() || c == '-')
        && !digits.is_empty()
        && digits.chars().all(|c| c.is_ascii_digit())
}

/// Whether the literal at `i` is the RHS of a `const NAME: &str = "..."`
/// item (scanning back over the few signature tokens).
fn is_const_definition(code: &[crate::lexer::Token], i: usize) -> bool {
    if i == 0 || !code[i - 1].is_punct('=') {
        return false;
    }
    code[i.saturating_sub(8)..i]
        .iter()
        .any(|t| t.is_ident("const"))
}

/// Extracts schema-shaped substrings from a documentation line.
fn schema_tags_in(line: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut rest = line;
    while let Some(pos) = rest.find(SCHEMA_PREFIX) {
        let tail = &rest[pos..];
        let end = tail
            .find(|c: char| !(c.is_ascii_alphanumeric() || c == '/' || c == '-'))
            .unwrap_or(tail.len());
        let candidate = &tail[..end];
        if is_schema_tag(candidate) {
            out.push(candidate);
        }
        rest = &rest[pos + SCHEMA_PREFIX.len()..];
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_tag_shape_is_strict() {
        assert!(is_schema_tag("leaky-frontends/sweep/v1"));
        assert!(is_schema_tag("leaky-frontends/lint-baseline/v12"));
        assert!(!is_schema_tag("leaky-frontends/sweep/v"));
        assert!(!is_schema_tag("leaky-frontends/sweep"));
        assert!(!is_schema_tag("leaky-store/v1"));
        assert!(!is_schema_tag("leaky-frontends/Sweep/v1"));
    }

    #[test]
    fn doc_lines_yield_embedded_tags() {
        let tags = schema_tags_in("tagged `leaky-frontends/trace/v1` and leaky-frontends/x/v2.");
        assert_eq!(tags, ["leaky-frontends/trace/v1", "leaky-frontends/x/v2"]);
        assert!(schema_tags_in("no tags here").is_empty());
    }
}

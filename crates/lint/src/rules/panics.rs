//! Panic-reachability rule (`panic-path`): public library APIs either
//! document their panic contract or provably sit on no panic path.
//!
//! The old per-site `panic` rule flagged `unwrap()` *call sites*; this
//! pass walks the [`crate::graph`] call graph instead. A **panic
//! source** is (a) an `unwrap`/`expect` call or
//! `panic!`/`todo!`/`unimplemented!` macro in non-test library code that
//! is not escaped with `// lint: allow(panic-path)` (reserved for
//! proven-unreachable invariants), or (b) any function whose doc block
//! declares a `# Panics` contract — calling it means inheriting that
//! contract. Every bare-`pub` library function that can reach a source
//! while lacking its own `# Panics` section is flagged once, with the
//! full entry-point → panic-site call path rendered in the message.
//!
//! The message deliberately omits line numbers: baselines match on
//! (file, rule, message), and a path that merely *moves* within a file
//! must not invalidate the pin. `assert!`-family macros and
//! `unreachable!` stay unflagged: they assert internal invariants.

use std::collections::BTreeSet;

use crate::diag::Diagnostic;
use crate::graph::CallGraph;
use crate::source::SourceFile;

const PANIC_MACROS: [&str; 3] = ["panic", "todo", "unimplemented"];
const PANIC_METHODS: [&str; 2] = ["unwrap", "expect"];

/// How a call-graph node can start a panic.
#[derive(Debug, Clone)]
enum Source {
    /// A direct panicking construct in the body, rendered like
    /// `.unwrap()` or `panic!`.
    Site(String),
    /// The function documents a `# Panics` contract.
    Documented,
}

/// Runs the reachability pass. Returns the `(file, line)` pairs whose
/// site-level `lint: allow(panic-path)` escapes actually suppressed a
/// panic site, so the stale-allow audit can count them as live.
pub fn check(
    files: &[&SourceFile],
    graph: &CallGraph,
    diags: &mut Vec<Diagnostic>,
) -> BTreeSet<(String, u32)> {
    let mut used_allows = BTreeSet::new();

    // Classify each node: does it directly panic (modulo site allows),
    // or carry a documented contract?
    let mut sources: Vec<Option<Source>> = Vec::with_capacity(graph.nodes.len());
    for node in &graph.nodes {
        let file = files[node.file];
        let mut direct: Option<String> = None;
        if let Some((open, close)) = node.body {
            for i in open + 1..close {
                let Some(site) = panic_site(file, i) else {
                    continue;
                };
                let line = file.code[i].line;
                if file.is_test_line(line) {
                    continue;
                }
                if file.is_allowed("panic-path", line) {
                    used_allows.insert((file.rel_path.clone(), line));
                    continue;
                }
                if direct.is_none() {
                    direct = Some(site);
                }
            }
        }
        sources.push(match (direct, node.has_panics_doc) {
            (Some(site), _) => Some(Source::Site(site)),
            (None, true) => Some(Source::Documented),
            (None, false) => None,
        });
    }

    for (entry, node) in graph.nodes.iter().enumerate() {
        if !node.is_pub || node.has_panics_doc {
            continue;
        }
        // A documented callee is a target; the entry itself only counts
        // when it panics directly (its missing doc is the finding).
        let is_target = |n: usize| match &sources[n] {
            Some(Source::Site(_)) => true,
            Some(Source::Documented) => n != entry,
            None => false,
        };
        let Some(path) = graph.shortest_path(entry, is_target) else {
            continue;
        };
        // `shortest_path` always returns a non-empty path.
        let terminal = path[path.len() - 1];
        let mut rendered: Vec<String> = path.iter().map(|&n| graph.nodes[n].qual.clone()).collect();
        match &sources[terminal] {
            Some(Source::Site(site)) => rendered.push(format!(
                "{site} ({})",
                files[graph.nodes[terminal].file].rel_path
            )),
            Some(Source::Documented) => {
                let last = rendered.len() - 1;
                rendered[last].push_str(" (documented `# Panics`)");
            }
            None => unreachable!("BFS target is a source"),
        }
        diags.push(Diagnostic::new(
            &files[node.file].rel_path,
            node.line,
            "panic-path",
            format!(
                "pub fn `{}` lacks a `# Panics` doc but can reach a panic: {}; \
                 document the contract on the entry point or break the path",
                node.qual,
                rendered.join(" \u{2192} ")
            ),
        ));
    }
    used_allows
}

/// Whether `code[i]` is a panicking construct; renders it when so.
fn panic_site(file: &SourceFile, i: usize) -> Option<String> {
    let code = &file.code;
    let tok = &code[i];
    let is_method = PANIC_METHODS.iter().any(|m| tok.is_ident(m))
        && i > 0
        && code[i - 1].is_punct('.')
        && code.get(i + 1).is_some_and(|t| t.is_punct('('));
    if is_method {
        return Some(format!(".{}()", tok.text));
    }
    let is_macro = PANIC_MACROS.iter().any(|m| tok.is_ident(m))
        && code.get(i + 1).is_some_and(|t| t.is_punct('!'));
    if is_macro {
        return Some(format!("{}!", tok.text));
    }
    None
}

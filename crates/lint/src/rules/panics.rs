//! Panic-freedom rule: library code must surface failures as values.
//!
//! `unwrap`/`expect` and the `panic!`/`todo!`/`unimplemented!` macros
//! are forbidden in library code outside `#[cfg(test)]`. Binaries
//! (`src/bin/**`, `src/main.rs`), benches, tests and doc examples are
//! exempt; an intentional, *documented* panic contract (a `# Panics`
//! section) is annotated with `// lint: allow(panic)` at the call site.
//!
//! `assert!`-family macros and `unreachable!` are deliberately not
//! flagged: they assert internal invariants, not fallible inputs.

use crate::diag::Diagnostic;
use crate::workspace::Workspace;

const PANIC_MACROS: [&str; 3] = ["panic", "todo", "unimplemented"];
const PANIC_METHODS: [&str; 2] = ["unwrap", "expect"];

/// Flags panicking constructs in non-test library code.
pub fn check(ws: &Workspace, diags: &mut Vec<Diagnostic>) {
    for file in ws.files.values() {
        if !file.is_library {
            continue;
        }
        let code = &file.code;
        for (i, tok) in code.iter().enumerate() {
            if file.is_test_line(tok.line) {
                continue;
            }
            // `.unwrap(` / `.expect(` method calls. The leading dot
            // keeps definitions (`fn unwrap`) and free functions out.
            let is_method = PANIC_METHODS.iter().any(|m| tok.is_ident(m))
                && i > 0
                && code[i - 1].is_punct('.')
                && code.get(i + 1).is_some_and(|t| t.is_punct('('));
            if is_method {
                diags.push(Diagnostic::new(
                    &file.rel_path,
                    tok.line,
                    "panic",
                    format!(
                        "`.{}()` in library code: return a `Result`/`Option` (or escape a \
                         documented `# Panics` contract with `lint: allow(panic)`)",
                        tok.text
                    ),
                ));
            }
            let is_macro = PANIC_MACROS.iter().any(|m| tok.is_ident(m))
                && code.get(i + 1).is_some_and(|t| t.is_punct('!'));
            if is_macro {
                diags.push(Diagnostic::new(
                    &file.rel_path,
                    tok.line,
                    "panic",
                    format!(
                        "`{}!` in library code: surface the failure as a value (or escape \
                         a documented `# Panics` contract with `lint: allow(panic)`)",
                        tok.text
                    ),
                ));
            }
        }
    }
}

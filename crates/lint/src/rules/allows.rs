//! Stale-allow audit (`stale-allow`): the escape inventory stays honest.
//!
//! Every `lint: allow(<rule>)` escape — Rust comment or TOML manifest —
//! must either suppress at least one diagnostic the rules would
//! otherwise emit, or (for `panic-path`) neutralize a concrete panic
//! site the reachability pass consulted. An escape that suppresses
//! nothing is dead weight that will silently mask a *future* violation
//! on its line, so it is itself a finding; so is an escape naming a
//! rule that does not exist (typo, or a rule renamed out from under it).
//!
//! `lint: allow(stale-allow)` is exempt from the audit (auditing the
//! auditor's own escapes would recurse); it exists so a deliberately
//! retained escape — e.g. a fixture — can be pinned.

use std::collections::BTreeSet;

use crate::diag::Diagnostic;
use crate::rules::RULES;
use crate::workspace::Workspace;

/// Audits every escape against the raw (pre-escape-filter) diagnostics
/// in `raw` and the panic sites in `used_site_allows`.
pub fn check(
    ws: &Workspace,
    raw: &[Diagnostic],
    used_site_allows: &BTreeSet<(String, u32)>,
    diags: &mut Vec<Diagnostic>,
) {
    let known: BTreeSet<&str> = RULES.iter().map(|r| r.name).collect();
    let mut audit = |file: &str, line: u32, rule: &str| {
        if rule == "stale-allow" {
            return;
        }
        if !known.contains(rule) {
            diags.push(Diagnostic::new(
                file,
                line,
                "stale-allow",
                format!("`lint: allow({rule})` names an unknown rule; see `leaky_lint rules`"),
            ));
            return;
        }
        let live = raw
            .iter()
            .any(|d| d.rule == rule && d.line == line && d.file == file)
            || (rule == "panic-path" && used_site_allows.contains(&(file.to_string(), line)));
        if !live {
            diags.push(Diagnostic::new(
                file,
                line,
                "stale-allow",
                format!("`lint: allow({rule})` suppresses no diagnostic; remove the stale escape"),
            ));
        }
    };
    for file in ws.files.values() {
        for (&line, rules) in file.allow_entries() {
            for rule in rules {
                audit(&file.rel_path, line, rule);
            }
        }
    }
    for manifest in ws.manifests.values() {
        for (&line, rules) in manifest.allow_entries() {
            for rule in rules {
                audit(&manifest.rel_path, line, rule);
            }
        }
    }
}

//! Determinism rules: the crates that feed content keys, sweep output
//! or goldens (`exp`, `bench`, `stats`, `core`) must not read wall
//! clocks, ambient randomness, or iterate unordered collections.
//!
//! One stray `Instant::now()` in a metric, one `HashMap` iteration in a
//! table renderer, and "byte-identical at any `--jobs N`" silently
//! stops being true — these rules make the convention machine-checked.

use crate::config::LintConfig;
use crate::diag::Diagnostic;
use crate::source::SourceFile;
use crate::workspace::Workspace;

/// Runs the three determinism rules over every file of the
/// determinism-critical crates (binaries and test code included: bins
/// render goldens, and a nondeterministic test is a flaky test).
pub fn check(ws: &Workspace, cfg: &LintConfig, diags: &mut Vec<Diagnostic>) {
    for file in ws.files.values() {
        let in_scope = file
            .crate_dir
            .as_deref()
            .is_some_and(|c| cfg.determinism_crates.contains(&c));
        if !in_scope {
            continue;
        }
        check_file(file, diags);
    }
}

fn check_file(file: &SourceFile, diags: &mut Vec<Diagnostic>) {
    let code = &file.code;
    for (i, tok) in code.iter().enumerate() {
        // wall-clock: `Instant::now()` and any use of `SystemTime`.
        if tok.is_ident("Instant")
            && code.get(i + 1).is_some_and(|t| t.is_punct(':'))
            && code.get(i + 2).is_some_and(|t| t.is_punct(':'))
            && code.get(i + 3).is_some_and(|t| t.is_ident("now"))
        {
            diags.push(Diagnostic::new(
                &file.rel_path,
                tok.line,
                "wall-clock",
                "`Instant::now()` in a determinism-critical crate: wall time must never \
                 reach content keys, sweep output or goldens"
                    .into(),
            ));
        }
        if tok.is_ident("SystemTime") {
            diags.push(Diagnostic::new(
                &file.rel_path,
                tok.line,
                "wall-clock",
                "`SystemTime` in a determinism-critical crate: wall time must never \
                 reach content keys, sweep output or goldens"
                    .into(),
            ));
        }

        // ambient-rng: unseeded randomness.
        if tok.is_ident("thread_rng") || tok.is_ident("RandomState") {
            diags.push(Diagnostic::new(
                &file.rel_path,
                tok.line,
                "ambient-rng",
                format!(
                    "`{}` in a determinism-critical crate: all randomness must flow from \
                     per-cell derived seeds (`leaky_exp::seed`)",
                    tok.text
                ),
            ));
        }
        if tok.is_ident("rand")
            && code.get(i + 1).is_some_and(|t| t.is_punct(':'))
            && code.get(i + 2).is_some_and(|t| t.is_punct(':'))
            && code.get(i + 3).is_some_and(|t| t.is_ident("random"))
        {
            diags.push(Diagnostic::new(
                &file.rel_path,
                tok.line,
                "ambient-rng",
                "`rand::random` in a determinism-critical crate: all randomness must flow \
                 from per-cell derived seeds (`leaky_exp::seed`)"
                    .into(),
            ));
        }

        // unordered-collections: HashMap/HashSet iteration order is
        // scheduling- and seed-dependent; `BTreeMap`/`BTreeSet` (or
        // explicit sorting) is the sanctioned alternative. Any mention
        // is flagged — proving a map is never iterated is harder than
        // using an ordered one.
        if tok.is_ident("HashMap") || tok.is_ident("HashSet") {
            diags.push(Diagnostic::new(
                &file.rel_path,
                tok.line,
                "unordered-collections",
                format!(
                    "`{}` in a determinism-critical crate: iteration order is unstable; \
                     use `BTree{}` or sort explicitly",
                    tok.text,
                    tok.text.trim_start_matches("Hash")
                ),
            ));
        }
    }
}

//! The baseline ratchet: a committed pin of accepted findings.
//!
//! `lint-baseline.json` lets a new rule land *strict on new code* while
//! pre-existing, individually-reviewed findings stay pinned. Entries
//! match on `(file, rule, message)` and deliberately **not** on line:
//! unrelated edits move lines constantly, and the rendered messages are
//! themselves line-free, so a pin survives reformatting but dies the
//! moment the finding's substance changes.
//!
//! The format is hand-rolled line-oriented JSON, like every other
//! artifact in this workspace (no dependencies, byte-stable output, one
//! finding per line so diffs review well).

use std::collections::BTreeSet;

use crate::diag::{json_escape, Diagnostic};

/// Schema tag of the baseline document.
pub const BASELINE_SCHEMA: &str = "leaky-frontends/lint-baseline/v1";

/// Conventional baseline file name at the workspace root.
pub const BASELINE_FILE: &str = "lint-baseline.json";

/// A parsed baseline: the set of pinned `(file, rule, message)` keys.
#[derive(Debug, Default)]
pub struct Baseline {
    entries: BTreeSet<(String, String, String)>,
}

impl Baseline {
    /// The empty baseline (nothing pinned).
    pub fn empty() -> Baseline {
        Baseline::default()
    }

    /// Number of pinned findings.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing is pinned.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether `d` is pinned by this baseline.
    pub fn contains(&self, d: &Diagnostic) -> bool {
        self.entries
            .contains(&(d.file.clone(), d.rule.to_string(), d.message.clone()))
    }

    /// Pinned entries matching none of `diags` — pins the ratchet
    /// should shed, reported so the baseline cannot rot silently.
    pub fn stale(&self, diags: &[Diagnostic]) -> Vec<&(String, String, String)> {
        self.entries
            .iter()
            .filter(|(file, rule, message)| {
                !diags
                    .iter()
                    .any(|d| d.file == *file && d.rule == *rule && d.message == *message)
            })
            .collect()
    }

    /// Parses a baseline document.
    ///
    /// # Errors
    ///
    /// A description of the first malformed construct: wrong or missing
    /// schema tag, or an entry line missing one of the three keys.
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let schema_ok = text
            .lines()
            .any(|l| read_string_value(l, "schema").as_deref() == Some(BASELINE_SCHEMA));
        if !schema_ok {
            return Err(format!(
                "baseline has no \"schema\": \"{BASELINE_SCHEMA}\" tag (wrong or outdated file?)"
            ));
        }
        let mut entries = BTreeSet::new();
        for (idx, line) in text.lines().enumerate() {
            if !line.contains("\"file\"") {
                continue;
            }
            let entry = (
                read_string_value(line, "file"),
                read_string_value(line, "rule"),
                read_string_value(line, "message"),
            );
            match entry {
                (Some(file), Some(rule), Some(message)) => {
                    entries.insert((file, rule, message));
                }
                _ => {
                    return Err(format!(
                        "baseline line {}: expected \"file\", \"rule\" and \"message\" keys",
                        idx + 1
                    ));
                }
            }
        }
        Ok(Baseline { entries })
    }

    /// Renders `diags` as a baseline document: sorted by (file, rule,
    /// message), deduplicated, line-free, byte-stable.
    pub fn render(diags: &[Diagnostic]) -> String {
        let entries: BTreeSet<(&str, &str, &str)> = diags
            .iter()
            .map(|d| (d.file.as_str(), d.rule, d.message.as_str()))
            .collect();
        let mut out = String::new();
        out.push_str(&format!("{{\n  \"schema\": \"{BASELINE_SCHEMA}\",\n"));
        out.push_str("  \"findings\": [\n");
        let rows: Vec<String> = entries
            .iter()
            .map(|(file, rule, message)| {
                format!(
                    "    {{\"file\": \"{}\", \"rule\": \"{}\", \"message\": \"{}\"}}",
                    json_escape(file),
                    json_escape(rule),
                    json_escape(message)
                )
            })
            .collect();
        out.push_str(&rows.join(",\n"));
        if !rows.is_empty() {
            out.push('\n');
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// Reads the JSON string value of `"key"` on `line`, unescaping the
/// standard escapes. Returns `None` when the key or a well-formed quoted
/// value is absent.
fn read_string_value(line: &str, key: &str) -> Option<String> {
    let needle = format!("\"{key}\"");
    let at = line.find(&needle)? + needle.len();
    let rest = line[at..].trim_start();
    let rest = rest.strip_prefix(':')?.trim_start();
    let rest = rest.strip_prefix('"')?;
    let mut out = String::new();
    let mut chars = rest.chars();
    while let Some(c) = chars.next() {
        match c {
            '"' => return Some(out),
            '\\' => match chars.next()? {
                '"' => out.push('"'),
                '\\' => out.push('\\'),
                'n' => out.push('\n'),
                't' => out.push('\t'),
                'r' => out.push('\r'),
                'u' => {
                    let hex: String = chars.by_ref().take(4).collect();
                    let code = u32::from_str_radix(&hex, 16).ok()?;
                    out.push(char::from_u32(code)?);
                }
                _ => return None,
            },
            c => out.push(c),
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag(file: &str, rule: &'static str, message: &str) -> Diagnostic {
        Diagnostic::new(file, 10, rule, message.to_string())
    }

    #[test]
    fn render_parse_round_trips_and_ignores_lines() {
        let diags = vec![
            diag("crates/a/src/lib.rs", "panic-path", "path \"x\" → y"),
            diag("crates/b/src/lib.rs", "schema-sync", "raw literal"),
        ];
        let text = Baseline::render(&diags);
        let parsed = Baseline::parse(&text).expect("round trip");
        assert_eq!(parsed.len(), 2);
        // Same finding on a different line still matches.
        let moved = Diagnostic::new(
            "crates/a/src/lib.rs",
            99,
            "panic-path",
            "path \"x\" → y".into(),
        );
        assert!(parsed.contains(&moved));
        assert!(!parsed.contains(&diag("crates/a/src/lib.rs", "panic-path", "other")));
        assert!(parsed.stale(&diags).is_empty());
        assert_eq!(parsed.stale(&diags[..1]).len(), 1);
        // Byte-stable render.
        assert_eq!(text, Baseline::render(&diags));
    }

    #[test]
    fn schema_tag_is_mandatory() {
        assert!(Baseline::parse("{}").is_err());
        let wrong =
            "{\n  \"schema\": \"leaky-frontends/lint-baseline/v9\",\n  \"findings\": [\n  ]\n}\n";
        assert!(Baseline::parse(wrong).is_err());
        let empty = Baseline::render(&[]);
        assert!(Baseline::parse(&empty).expect("empty ok").is_empty());
    }
}

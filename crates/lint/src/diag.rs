//! Diagnostics: what a rule reports and how it renders.

use std::fmt;

/// One rule violation, anchored to a file and line so a
/// `// lint: allow(<rule>)` escape on that line can suppress it.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Diagnostic {
    /// Workspace-relative path the violation anchors to.
    pub file: String,
    /// 1-based anchor line.
    pub line: u32,
    /// Stable rule name (see [`crate::rules::RULES`]).
    pub rule: &'static str,
    /// Human-readable description of the violation.
    pub message: String,
}

impl Diagnostic {
    /// Builds a diagnostic.
    pub fn new(file: impl Into<String>, line: u32, rule: &'static str, message: String) -> Self {
        Diagnostic {
            file: file.into(),
            line,
            rule,
            message,
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

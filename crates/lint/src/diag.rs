//! Diagnostics: what a rule reports and how it renders — human text and
//! the stable machine-readable JSON document.

use std::fmt;

/// Schema tag of the `--format json` diagnostics document.
pub const LINT_SCHEMA: &str = "leaky-frontends/lint/v1";

/// One rule violation, anchored to a file and line so a
/// `// lint: allow(<rule>)` escape on that line can suppress it.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Diagnostic {
    /// Workspace-relative path the violation anchors to.
    pub file: String,
    /// 1-based anchor line.
    pub line: u32,
    /// Stable rule name (see [`crate::rules::RULES`]).
    pub rule: &'static str,
    /// Human-readable description of the violation.
    pub message: String,
}

impl Diagnostic {
    /// Builds a diagnostic.
    pub fn new(file: impl Into<String>, line: u32, rule: &'static str, message: String) -> Self {
        Diagnostic {
            file: file.into(),
            line,
            rule,
            message,
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Escapes `s` as a JSON string body (no surrounding quotes): the hand-
/// rolled mirror of the workspace's dependency-free JSON writers.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders the full diagnostics document for `--format json`: sorted
/// input in, byte-identical output out. `baselined(d)` marks findings
/// pinned by the baseline ratchet (they don't fail the run).
pub fn render_json(diags: &[Diagnostic], baselined: impl Fn(&Diagnostic) -> bool) -> String {
    let mut new_count = 0usize;
    let mut rows = Vec::with_capacity(diags.len());
    for d in diags {
        let pinned = baselined(d);
        if !pinned {
            new_count += 1;
        }
        rows.push(format!(
            "    {{\"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"message\": \"{}\", \
             \"baselined\": {}}}",
            json_escape(&d.file),
            d.line,
            json_escape(d.rule),
            json_escape(&d.message),
            pinned
        ));
    }
    let mut out = String::new();
    out.push_str(&format!("{{\n  \"schema\": \"{LINT_SCHEMA}\",\n"));
    out.push_str(&format!(
        "  \"total\": {}, \"new\": {}, \"baselined\": {},\n",
        diags.len(),
        new_count,
        diags.len() - new_count
    ));
    out.push_str("  \"diagnostics\": [\n");
    out.push_str(&rows.join(",\n"));
    if !rows.is_empty() {
        out.push('\n');
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_document_is_stable_and_escaped() {
        let diags = vec![
            Diagnostic::new("a.rs", 3, "panic-path", "path \"quoted\" → deep".into()),
            Diagnostic::new("b.rs", 7, "stale-allow", "nothing".into()),
        ];
        let json = render_json(&diags, |d| d.rule == "stale-allow");
        assert!(json.starts_with("{\n  \"schema\": \"leaky-frontends/lint/v1\",\n"));
        assert!(json.contains("\"total\": 2, \"new\": 1, \"baselined\": 1"));
        assert!(json.contains("path \\\"quoted\\\" → deep"));
        assert!(json.contains("\"baselined\": true"));
        assert_eq!(json, render_json(&diags, |d| d.rule == "stale-allow"));
        let empty = render_json(&[], |_| false);
        assert!(empty.contains("\"diagnostics\": [\n  ]\n"));
    }
}

//! Binary entry point: `cargo run -p leaky_lint -- check`.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    leaky_lint::cli::run(&args)
}

//! The `leaky_lint` command-line interface.
//!
//! * `leaky_lint check [--root <path>] [--format text|json]
//!   [--baseline <file> | --no-baseline] [--write-baseline]` — run every
//!   rule; exit 0 when no *new* (non-baselined) finding survives, 1
//!   otherwise, 2 on usage or I/O errors. When the workspace root holds
//!   a `lint-baseline.json` it is loaded automatically; `--baseline`
//!   points elsewhere and `--no-baseline` disables the ratchet.
//! * `leaky_lint rules` — print the rule catalogue.
//!
//! `--format json` emits the `leaky-frontends/lint/v1` document: sorted,
//! hand-rolled, byte-identical across runs — CI diffs two consecutive
//! runs to pin exactly that.

use std::path::PathBuf;
use std::process::ExitCode;

use crate::baseline::{Baseline, BASELINE_FILE};
use crate::config::LintConfig;
use crate::diag::render_json;
use crate::rules::RULES;
use crate::workspace::{find_root, Workspace};

/// Runs the CLI with pre-split arguments (program name excluded) and
/// returns the process exit code.
pub fn run(args: &[String]) -> ExitCode {
    match args.first().map(String::as_str) {
        Some("check") => check(&args[1..]),
        Some("rules") => {
            print_rules();
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("leaky_lint: unknown command {other:?}");
            usage();
            ExitCode::from(2)
        }
        None => {
            usage();
            ExitCode::from(2)
        }
    }
}

fn usage() {
    eprintln!(
        "usage: leaky_lint <check [--root <path>] [--format text|json] \
         [--baseline <file> | --no-baseline] [--write-baseline] | rules>"
    );
}

#[derive(Default)]
struct CheckArgs {
    root: Option<PathBuf>,
    json: bool,
    baseline: Option<PathBuf>,
    no_baseline: bool,
    write_baseline: bool,
}

fn parse_check_args(args: &[String]) -> Result<CheckArgs, String> {
    let mut out = CheckArgs::default();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--root" => match iter.next() {
                Some(path) => out.root = Some(PathBuf::from(path)),
                None => return Err("--root needs a path".into()),
            },
            "--format" => match iter.next().map(String::as_str) {
                Some("text") => out.json = false,
                Some("json") => out.json = true,
                Some(other) => {
                    return Err(format!("unknown format {other:?} (expected text or json)"))
                }
                None => return Err("--format needs text or json".into()),
            },
            "--baseline" => match iter.next() {
                Some(path) => out.baseline = Some(PathBuf::from(path)),
                None => return Err("--baseline needs a file".into()),
            },
            "--no-baseline" => out.no_baseline = true,
            "--write-baseline" => out.write_baseline = true,
            other => return Err(format!("unknown check argument {other:?}")),
        }
    }
    if out.no_baseline && out.baseline.is_some() {
        return Err("--baseline and --no-baseline are mutually exclusive".into());
    }
    Ok(out)
}

fn check(args: &[String]) -> ExitCode {
    let args = match parse_check_args(args) {
        Ok(args) => args,
        Err(e) => {
            eprintln!("leaky_lint: {e}");
            return ExitCode::from(2);
        }
    };
    let root = match args.root.clone() {
        Some(root) => root,
        None => {
            let cwd = match std::env::current_dir() {
                Ok(cwd) => cwd,
                Err(e) => {
                    eprintln!("leaky_lint: cannot determine current directory: {e}");
                    return ExitCode::from(2);
                }
            };
            match find_root(&cwd) {
                Ok(root) => root,
                Err(e) => {
                    eprintln!("leaky_lint: {e}");
                    return ExitCode::from(2);
                }
            }
        }
    };
    let ws = match Workspace::load(&root) {
        Ok(ws) => ws,
        Err(e) => {
            eprintln!("leaky_lint: {e}");
            return ExitCode::from(2);
        }
    };
    let diags = crate::rules::run_all(&ws, &LintConfig::default());

    // Resolve the ratchet: explicit flag > committed root file > none.
    let baseline_path = if args.no_baseline {
        None
    } else {
        match args.baseline.clone() {
            Some(path) => Some(path),
            None => {
                let committed = root.join(BASELINE_FILE);
                committed.is_file().then_some(committed)
            }
        }
    };
    if args.write_baseline {
        let path = baseline_path.unwrap_or_else(|| root.join(BASELINE_FILE));
        let text = Baseline::render(&diags);
        if let Err(e) = std::fs::write(&path, &text) {
            eprintln!("leaky_lint: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
        println!(
            "leaky_lint: wrote {} finding(s) to {}",
            diags.len(),
            path.display()
        );
        return ExitCode::SUCCESS;
    }
    let baseline = match &baseline_path {
        None => Baseline::empty(),
        Some(path) => {
            let text = match std::fs::read_to_string(path) {
                Ok(text) => text,
                Err(e) => {
                    eprintln!("leaky_lint: cannot read {}: {e}", path.display());
                    return ExitCode::from(2);
                }
            };
            match Baseline::parse(&text) {
                Ok(baseline) => baseline,
                Err(e) => {
                    eprintln!("leaky_lint: {}: {e}", path.display());
                    return ExitCode::from(2);
                }
            }
        }
    };

    // Stale pins go to stderr (never into the JSON document): they don't
    // fail the run, but workspace_clean.rs pins that the committed
    // baseline carries none.
    for (file, rule, message) in baseline.stale(&diags) {
        eprintln!("leaky_lint: stale baseline entry: {file}: [{rule}] {message}");
    }

    let new: Vec<_> = diags.iter().filter(|d| !baseline.contains(d)).collect();
    if args.json {
        print!("{}", render_json(&diags, |d| baseline.contains(d)));
        return if new.is_empty() {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }
    if new.is_empty() {
        let suffix = if baseline.is_empty() {
            String::new()
        } else {
            format!(" ({} baselined)", diags.len())
        };
        println!(
            "leaky_lint: clean — {} files, {} rules, 0 new violations{suffix}",
            ws.files.len(),
            RULES.len()
        );
        return ExitCode::SUCCESS;
    }
    for d in &new {
        println!("{d}");
    }
    println!(
        "leaky_lint: {} new violation(s); escape intentional exceptions with \
         `// lint: allow(<rule>)` on the flagged line or pin reviewed findings \
         with --write-baseline",
        new.len()
    );
    ExitCode::FAILURE
}

fn print_rules() {
    let mut family = "";
    for rule in RULES {
        if rule.family != family {
            family = rule.family;
            println!("[{family}]");
        }
        println!("  {:<22} {}", rule.name, rule.description);
    }
}

//! The `leaky_lint` command-line interface.
//!
//! * `leaky_lint check [--root <path>]` — run every rule; exit 0 when
//!   clean, 1 with one diagnostic per line when not, 2 on usage or I/O
//!   errors.
//! * `leaky_lint rules` — print the rule catalogue.

use std::path::PathBuf;
use std::process::ExitCode;

use crate::config::LintConfig;
use crate::rules::RULES;
use crate::workspace::{find_root, Workspace};

/// Runs the CLI with pre-split arguments (program name excluded) and
/// returns the process exit code.
pub fn run(args: &[String]) -> ExitCode {
    match args.first().map(String::as_str) {
        Some("check") => check(&args[1..]),
        Some("rules") => {
            print_rules();
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("leaky_lint: unknown command {other:?}");
            usage();
            ExitCode::from(2)
        }
        None => {
            usage();
            ExitCode::from(2)
        }
    }
}

fn usage() {
    eprintln!("usage: leaky_lint <check [--root <path>] | rules>");
}

fn check(args: &[String]) -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--root" => match iter.next() {
                Some(path) => root = Some(PathBuf::from(path)),
                None => {
                    eprintln!("leaky_lint: --root needs a path");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("leaky_lint: unknown check argument {other:?}");
                return ExitCode::from(2);
            }
        }
    }
    let root = match root {
        Some(root) => root,
        None => {
            let cwd = match std::env::current_dir() {
                Ok(cwd) => cwd,
                Err(e) => {
                    eprintln!("leaky_lint: cannot determine current directory: {e}");
                    return ExitCode::from(2);
                }
            };
            match find_root(&cwd) {
                Ok(root) => root,
                Err(e) => {
                    eprintln!("leaky_lint: {e}");
                    return ExitCode::from(2);
                }
            }
        }
    };
    let ws = match Workspace::load(&root) {
        Ok(ws) => ws,
        Err(e) => {
            eprintln!("leaky_lint: {e}");
            return ExitCode::from(2);
        }
    };
    let diags = crate::rules::run_all(&ws, &LintConfig::default());
    if diags.is_empty() {
        println!(
            "leaky_lint: clean — {} files, {} rules, 0 violations",
            ws.files.len(),
            RULES.len()
        );
        return ExitCode::SUCCESS;
    }
    for d in &diags {
        println!("{d}");
    }
    println!(
        "leaky_lint: {} violation(s); escape intentional exceptions with \
         `// lint: allow(<rule>)` on the flagged line",
        diags.len()
    );
    ExitCode::FAILURE
}

fn print_rules() {
    let mut family = "";
    for rule in RULES {
        if rule.family != family {
            family = rule.family;
            println!("[{family}]");
        }
        println!("  {:<22} {}", rule.name, rule.description);
    }
}

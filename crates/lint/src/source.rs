//! Per-file source model: code tokens, `#[cfg(test)]` line masking and
//! `// lint: allow(<rule>)` escape extraction.

use std::collections::{BTreeMap, BTreeSet};

use crate::lexer::{lex, Token, TokenKind};
use crate::parse::{parse_items, FileItems};

/// A lexed workspace source file with everything the rules consume.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path with forward slashes.
    pub rel_path: String,
    /// Directory name under `crates/` (`"core"`, `"stats"`, ...); `None`
    /// for the root umbrella crate's `src/`.
    pub crate_dir: Option<String>,
    /// Whether the file is *library* code: inside a `src/` tree but not a
    /// binary target (`src/bin/**`, `src/main.rs`). The panic-freedom
    /// rule only applies to library code.
    pub is_library: bool,
    /// Token stream with comments removed.
    pub code: Vec<Token>,
    /// Item-level view of the file: functions (with qualification,
    /// visibility and `# Panics` contracts), types and imports. The item
    /// body ranges index into [`SourceFile::code`].
    pub items: FileItems,
    /// Line ranges (1-based, inclusive) covered by `#[cfg(test)]` items.
    test_ranges: Vec<(u32, u32)>,
    /// `lint: allow(rule)` escapes, keyed by the line they suppress.
    allows: BTreeMap<u32, BTreeSet<String>>,
}

impl SourceFile {
    /// Lexes and analyses one file.
    pub fn new(rel_path: String, src: &str) -> Self {
        let tokens = lex(src);
        let allows = collect_allows(&tokens);
        let (code, items) = parse_items(&tokens);
        let test_ranges = collect_test_ranges(&code);
        let crate_dir = rel_path
            .strip_prefix("crates/")
            .and_then(|rest| rest.split('/').next())
            .map(str::to_owned);
        let in_src = rel_path.contains("/src/") || rel_path.starts_with("src/");
        let is_library =
            in_src && !rel_path.contains("/src/bin/") && !rel_path.ends_with("src/main.rs");
        SourceFile {
            rel_path,
            crate_dir,
            is_library,
            code,
            items,
            test_ranges,
            allows,
        }
    }

    /// Whether `line` falls inside a `#[cfg(test)]` item.
    pub fn is_test_line(&self, line: u32) -> bool {
        self.test_ranges
            .iter()
            .any(|&(a, b)| a <= line && line <= b)
    }

    /// Whether `rule` is escaped on `line` via a `lint: allow` comment.
    pub fn is_allowed(&self, rule: &str, line: u32) -> bool {
        self.allows.get(&line).is_some_and(|set| set.contains(rule))
    }

    /// Every `lint: allow` escape in the file, keyed by the line it
    /// suppresses. The stale-allow audit iterates this to find escapes
    /// that no longer suppress anything.
    pub fn allow_entries(&self) -> &BTreeMap<u32, BTreeSet<String>> {
        &self.allows
    }
}

/// Parses `lint: allow(a, b)` escapes out of comment tokens.
///
/// A *trailing* comment (code earlier on the same line) suppresses its
/// own line; a *standalone* comment line suppresses the next line that
/// holds any code token. Returned map: suppressed line → rule names.
///
/// Doc comments never carry escapes: documentation *describing* the
/// escape syntax (as this crate's own rustdoc does) must not create
/// one. A `///`/`//!`/`/** */` comment lexes with `/`, `!` or `*` as
/// its first text character, which ordinary `//`/`/* */` comments
/// cannot reproduce (`// /` would, but reads as deliberate).
pub fn collect_allows(tokens: &[Token]) -> BTreeMap<u32, BTreeSet<String>> {
    let mut out: BTreeMap<u32, BTreeSet<String>> = BTreeMap::new();
    for (idx, tok) in tokens.iter().enumerate() {
        if tok.kind != TokenKind::Comment {
            continue;
        }
        if tok.text.starts_with(['/', '!', '*']) {
            continue;
        }
        let rules = parse_allow_rules(&tok.text);
        if rules.is_empty() {
            continue;
        }
        let trailing = tokens[..idx]
            .iter()
            .rev()
            .take_while(|t| t.line == tok.line)
            .any(|t| t.kind != TokenKind::Comment);
        let target = if trailing {
            Some(tok.line)
        } else {
            // First code token at or after the comment's line.
            tokens[idx + 1..]
                .iter()
                .find(|t| t.kind != TokenKind::Comment)
                .map(|t| t.line)
        };
        if let Some(line) = target {
            out.entry(line).or_default().extend(rules);
        }
    }
    out
}

/// Extracts rule names from a comment body containing
/// `lint: allow(rule1, rule2)`. Returns empty when the marker is absent.
pub fn parse_allow_rules(comment: &str) -> Vec<String> {
    let Some(pos) = comment.find("lint: allow(") else {
        return Vec::new();
    };
    let rest = &comment[pos + "lint: allow(".len()..];
    let Some(close) = rest.find(')') else {
        return Vec::new();
    };
    rest[..close]
        .split(',')
        .map(|r| r.trim().to_owned())
        // Rule names are lowercase-dash words; anything else is prose
        // *describing* the syntax (`allow(...)`, `allow(<rule>)`), not
        // an escape.
        .filter(|r| !r.is_empty() && r.chars().all(|c| c.is_ascii_lowercase() || c == '-'))
        .collect()
}

/// Finds line ranges covered by `#[cfg(test)]`-gated items (and `#[test]`
/// functions) so the panic-freedom rule can skip test code.
///
/// An attribute whose idents include `test` but not `not` marks the next
/// item; the item extends to its matching close brace (or terminating
/// semicolon). An *inner* `#![cfg(test)]` marks the whole file.
fn collect_test_ranges(code: &[Token]) -> Vec<(u32, u32)> {
    let mut ranges = Vec::new();
    let mut i = 0;
    while i < code.len() {
        if !code[i].is_punct('#') {
            i += 1;
            continue;
        }
        let inner = code.get(i + 1).is_some_and(|t| t.is_punct('!'));
        let open = i + 1 + usize::from(inner);
        if !code.get(open).is_some_and(|t| t.is_punct('[')) {
            i += 1;
            continue;
        }
        let Some(close) = matching(code, open, '[', ']') else {
            break;
        };
        let idents: Vec<&str> = code[open..close]
            .iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        let is_test = idents.contains(&"test") && !idents.contains(&"not");
        if !is_test {
            i = close + 1;
            continue;
        }
        if inner {
            // `#![cfg(test)]`: the rest of the file is test code.
            ranges.push((code[i].line, u32::MAX));
            break;
        }
        // Skip any further outer attributes between the cfg and its item.
        let mut j = close + 1;
        while code.get(j).is_some_and(|t| t.is_punct('#'))
            && code.get(j + 1).is_some_and(|t| t.is_punct('['))
        {
            match matching(code, j + 1, '[', ']') {
                Some(c) => j = c + 1,
                None => break,
            }
        }
        // Item extent: a `;` before any brace (e.g. `mod tests;`), or the
        // matching close of its first `{`.
        let mut end = None;
        let mut k = j;
        while k < code.len() {
            if code[k].is_punct(';') {
                end = Some(k);
                break;
            }
            if code[k].is_punct('{') {
                end = matching(code, k, '{', '}');
                break;
            }
            k += 1;
        }
        match end {
            Some(e) => {
                ranges.push((code[i].line, code[e].line));
                i = e + 1;
            }
            None => {
                ranges.push((code[i].line, u32::MAX));
                break;
            }
        }
    }
    ranges
}

/// Index of the token closing the bracket opened at `open` (which must
/// hold `open_c`), or `None` when unbalanced.
pub fn matching(code: &[Token], open: usize, open_c: char, close_c: char) -> Option<usize> {
    let mut depth = 0usize;
    for (off, tok) in code[open..].iter().enumerate() {
        if tok.is_punct(open_c) {
            depth += 1;
        } else if tok.is_punct(close_c) {
            depth -= 1;
            if depth == 0 {
                return Some(open + off);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(src: &str) -> SourceFile {
        SourceFile::new("crates/demo/src/lib.rs".into(), src)
    }

    #[test]
    fn cfg_test_mod_lines_are_masked() {
        let f = file("fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn live2() {}\n");
        assert!(!f.is_test_line(1));
        assert!(f.is_test_line(2));
        assert!(f.is_test_line(4));
        assert!(f.is_test_line(5));
        assert!(!f.is_test_line(6));
    }

    #[test]
    fn cfg_not_test_is_live_code() {
        let f = file("#[cfg(not(test))]\nfn live() {}\n");
        assert!(!f.is_test_line(2));
    }

    #[test]
    fn trailing_allow_covers_its_own_line() {
        let f = file("fn f() {\n    x.unwrap(); // lint: allow(panic) — justified\n}\n");
        assert!(f.is_allowed("panic", 2));
        assert!(!f.is_allowed("panic", 3));
    }

    #[test]
    fn standalone_allow_covers_the_next_code_line() {
        let f = file("// lint: allow(panic, wall-clock)\nx.unwrap();\n");
        assert!(f.is_allowed("panic", 2));
        assert!(f.is_allowed("wall-clock", 2));
        assert!(!f.is_allowed("panic", 1));
    }

    #[test]
    fn allow_in_a_string_is_inert() {
        let f = file("let s = \"lint: allow(panic)\";\nx.unwrap();\n");
        assert!(!f.is_allowed("panic", 1));
        assert!(!f.is_allowed("panic", 2));
    }

    #[test]
    fn classification_of_library_and_binary_code() {
        let lib = SourceFile::new("crates/core/src/run.rs".into(), "");
        assert!(lib.is_library);
        assert_eq!(lib.crate_dir.as_deref(), Some("core"));
        let bin = SourceFile::new("crates/bench/src/bin/foo.rs".into(), "");
        assert!(!bin.is_library);
        let main = SourceFile::new("crates/lint/src/main.rs".into(), "");
        assert!(!main.is_library);
        let root = SourceFile::new("src/lib.rs".into(), "");
        assert!(root.is_library);
        assert_eq!(root.crate_dir, None);
    }
}

//! A minimal hand-rolled Rust lexer, aware of comments, strings, raw
//! strings, byte strings, char literals and lifetimes.
//!
//! The rules in this crate only need a faithful *token stream with line
//! numbers*: identifiers, punctuation, literals and comments. Anything
//! inside a string or comment must never be mistaken for code (a doc
//! example calling `.unwrap()` is not a violation), and `// lint:
//! allow(...)` escapes live in comments — so the lexer keeps comments as
//! tokens and lets [`crate::source`] interpret them.
//!
//! This is deliberately not a full Rust lexer (no float/exponent
//! refinement, no token trees); it only guarantees that token
//! *boundaries* and *classes* are right, which is all the rule engine
//! consumes.

/// The class of a lexed token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (including raw identifiers, without the
    /// `r#` prefix).
    Ident,
    /// A string / raw-string / byte-string / char / numeric literal.
    /// For string-like literals [`Token::text`] holds the *contents*
    /// (unquoted); for numbers it holds the raw digits.
    Literal,
    /// A single punctuation character.
    Punct(char),
    /// A `//` line comment or `/* */` block comment (text excludes the
    /// delimiters). Rules skip these; the escape scanner reads them.
    Comment,
}

/// One token with its 1-based source line (the line it *starts* on).
#[derive(Debug, Clone)]
pub struct Token {
    /// Token class.
    pub kind: TokenKind,
    /// Token text; see [`TokenKind`] for what is stored per class.
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
}

impl Token {
    /// Whether this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == s
    }

    /// Whether this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct(c)
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_'
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Lexes `src` into a token stream. Unterminated strings/comments are
/// tolerated (the remainder of the file becomes one token): the linter
/// must degrade gracefully on malformed input rather than panic, and
/// `cargo build` will report the real error.
pub fn lex(src: &str) -> Vec<Token> {
    Lexer {
        b: src.as_bytes(),
        i: 0,
        line: 1,
        out: Vec::new(),
    }
    .run()
}

struct Lexer<'a> {
    b: &'a [u8],
    i: usize,
    line: u32,
    out: Vec<Token>,
}

impl Lexer<'_> {
    fn run(mut self) -> Vec<Token> {
        while self.i < self.b.len() {
            let c = self.b[self.i];
            match c {
                b'\n' => {
                    self.line += 1;
                    self.i += 1;
                }
                _ if c.is_ascii_whitespace() => self.i += 1,
                b'/' if self.peek(1) == Some(b'/') => self.line_comment(),
                b'/' if self.peek(1) == Some(b'*') => self.block_comment(),
                b'"' => self.cooked_string(),
                b'\'' => self.char_or_lifetime(),
                _ if is_ident_start(c) => self.ident_or_prefixed(),
                _ if c.is_ascii_digit() => self.number(),
                _ => {
                    self.push(TokenKind::Punct(c as char), String::new());
                    self.i += 1;
                }
            }
        }
        self.out
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.b.get(self.i + ahead).copied()
    }

    fn push(&mut self, kind: TokenKind, text: String) {
        self.out.push(Token {
            kind,
            text,
            line: self.line,
        });
    }

    fn line_comment(&mut self) {
        let start = self.i + 2;
        let mut j = start;
        while j < self.b.len() && self.b[j] != b'\n' {
            j += 1;
        }
        let text = String::from_utf8_lossy(&self.b[start..j]).into_owned();
        self.push(TokenKind::Comment, text);
        self.i = j;
    }

    fn block_comment(&mut self) {
        let start_line = self.line;
        let start = self.i + 2;
        let mut j = start;
        let mut depth = 1usize;
        while j < self.b.len() && depth > 0 {
            match (self.b[j], self.b.get(j + 1).copied()) {
                (b'/', Some(b'*')) => {
                    depth += 1;
                    j += 2;
                }
                (b'*', Some(b'/')) => {
                    depth -= 1;
                    j += 2;
                }
                (b'\n', _) => {
                    self.line += 1;
                    j += 1;
                }
                _ => j += 1,
            }
        }
        let end = j.saturating_sub(2).max(start);
        let text = String::from_utf8_lossy(&self.b[start..end]).into_owned();
        self.out.push(Token {
            kind: TokenKind::Comment,
            text,
            line: start_line,
        });
        self.i = j;
    }

    /// A `"..."` string with escapes (also used for `b"..."` bodies).
    fn cooked_string(&mut self) {
        let start_line = self.line;
        let start = self.i + 1;
        let mut j = start;
        while j < self.b.len() {
            match self.b[j] {
                b'\\' => j += 2,
                b'"' => break,
                b'\n' => {
                    self.line += 1;
                    j += 1;
                }
                _ => j += 1,
            }
        }
        let text = String::from_utf8_lossy(&self.b[start..j.min(self.b.len())]).into_owned();
        self.out.push(Token {
            kind: TokenKind::Literal,
            text,
            line: start_line,
        });
        self.i = (j + 1).min(self.b.len());
    }

    /// A `r"..."` / `r#"..."#` raw string body starting at the first `#`
    /// or `"` (the `r`/`br` prefix has already been consumed).
    fn raw_string(&mut self) {
        let start_line = self.line;
        let mut hashes = 0usize;
        while self.peek(hashes) == Some(b'#') {
            hashes += 1;
        }
        // Caller guaranteed a `"` follows the hashes.
        let start = self.i + hashes + 1;
        let mut j = start;
        'scan: while j < self.b.len() {
            if self.b[j] == b'\n' {
                self.line += 1;
            } else if self.b[j] == b'"' {
                for k in 0..hashes {
                    if self.b.get(j + 1 + k) != Some(&b'#') {
                        j += 1;
                        continue 'scan;
                    }
                }
                break;
            }
            j += 1;
        }
        let text = String::from_utf8_lossy(&self.b[start..j.min(self.b.len())]).into_owned();
        self.out.push(Token {
            kind: TokenKind::Literal,
            text,
            line: start_line,
        });
        self.i = (j + 1 + hashes).min(self.b.len());
    }

    /// Either a lifetime (`'a`, emitted as nothing — no rule reads
    /// lifetimes) or a char literal (`'x'`, `'\n'`, `b'?'` bodies).
    fn char_or_lifetime(&mut self) {
        // Lifetime: identifier start after the quote and the character
        // after *that* is not a closing quote ('a' is a char, 'a is a
        // lifetime).
        if let Some(c1) = self.peek(1) {
            if is_ident_start(c1) && self.peek(2) != Some(b'\'') {
                let mut j = self.i + 1;
                while j < self.b.len() && is_ident_continue(self.b[j]) {
                    j += 1;
                }
                self.i = j;
                return;
            }
        }
        // Char literal: scan to the closing quote, honouring escapes.
        let start = self.i + 1;
        let mut j = start;
        while j < self.b.len() {
            match self.b[j] {
                b'\\' => j += 2,
                b'\'' => break,
                _ => j += 1,
            }
        }
        let text = String::from_utf8_lossy(&self.b[start..j.min(self.b.len())]).into_owned();
        self.push(TokenKind::Literal, text);
        self.i = (j + 1).min(self.b.len());
    }

    /// An identifier, or a string-prefix identifier (`r`, `b`, `br`)
    /// that actually introduces a raw/byte string or raw identifier.
    fn ident_or_prefixed(&mut self) {
        let start = self.i;
        let mut j = start;
        while j < self.b.len() && is_ident_continue(self.b[j]) {
            j += 1;
        }
        let ident = &self.b[start..j];
        let next = self.b.get(j).copied();
        match (ident, next) {
            (b"r" | b"br", Some(b'"')) => {
                self.i = j;
                self.raw_string();
            }
            (b"r" | b"br", Some(b'#')) => {
                // Raw string (`r#"`) or raw identifier (`r#ident`).
                let mut hashes = 0usize;
                while self.b.get(j + hashes) == Some(&b'#') {
                    hashes += 1;
                }
                if self.b.get(j + hashes) == Some(&b'"') {
                    self.i = j;
                    self.raw_string();
                } else {
                    // Raw identifier: emit the bare name.
                    let id_start = j + 1;
                    let mut k = id_start;
                    while k < self.b.len() && is_ident_continue(self.b[k]) {
                        k += 1;
                    }
                    let text = String::from_utf8_lossy(&self.b[id_start..k]).into_owned();
                    self.push(TokenKind::Ident, text);
                    self.i = k;
                }
            }
            (b"b", Some(b'"')) => {
                self.i = j;
                self.cooked_string();
            }
            (b"b", Some(b'\'')) => {
                self.i = j;
                self.char_or_lifetime();
            }
            _ => {
                let text = String::from_utf8_lossy(ident).into_owned();
                self.push(TokenKind::Ident, text);
                self.i = j;
            }
        }
    }

    fn number(&mut self) {
        let start = self.i;
        let mut j = start;
        while j < self.b.len() {
            let c = self.b[j];
            if is_ident_continue(c) {
                j += 1;
            } else if c == b'.' && self.b.get(j + 1).is_some_and(|d| d.is_ascii_digit()) {
                // Decimal point — but never eat `..` range punctuation.
                j += 1;
            } else {
                break;
            }
        }
        let text = String::from_utf8_lossy(&self.b[start..j]).into_owned();
        self.push(TokenKind::Literal, text);
        self.i = j;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn strings_and_comments_hide_code_words() {
        let src = r##"
            // unwrap() in a comment
            /* HashMap in /* a nested */ block */
            let s = "Instant::now() inside a string";
            let r = r#"thread_rng " quote"#;
            let b = b"SystemTime";
            real_ident();
        "##;
        let ids = idents(src);
        assert_eq!(ids, ["let", "s", "let", "r", "let", "b", "real_ident"]);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> char { 'x' }";
        let toks = lex(src);
        assert!(toks.iter().any(|t| t.is_ident("str")));
        // The char literal body survives as a literal, the lifetime
        // names vanish.
        assert!(toks
            .iter()
            .any(|t| t.kind == TokenKind::Literal && t.text == "x"));
        assert!(!toks.iter().any(|t| t.is_ident("a")));
    }

    #[test]
    fn escaped_quotes_do_not_end_strings() {
        let toks = lex(r#"let x = "a \" unwrap() \" b"; after"#);
        assert!(toks.iter().any(|t| t.is_ident("after")));
        assert!(!toks.iter().any(|t| t.is_ident("unwrap")));
    }

    #[test]
    fn raw_strings_respect_hash_count() {
        let toks = lex(r###"let x = r#"end " not yet"# ; tail"###);
        assert!(toks.iter().any(|t| t.is_ident("tail")));
        let lit = toks
            .iter()
            .find(|t| t.kind == TokenKind::Literal)
            .expect("raw string lexed");
        assert_eq!(lit.text, "end \" not yet");
    }

    #[test]
    fn lines_are_tracked_through_multiline_tokens() {
        let src = "a\n/* two\nlines */\nb\n\"str\nacross\"\nc";
        let toks = lex(src);
        let line_of = |name: &str| {
            toks.iter()
                .find(|t| t.is_ident(name))
                .map(|t| t.line)
                .expect("ident present")
        };
        assert_eq!(line_of("a"), 1);
        assert_eq!(line_of("b"), 4);
        assert_eq!(line_of("c"), 7);
    }

    #[test]
    fn numbers_do_not_eat_ranges_or_methods() {
        let toks = lex("0..=n 1.0e3 2.max(3)");
        assert!(toks.iter().any(|t| t.is_ident("max")));
        let lits: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Literal)
            .map(|t| t.text.as_str())
            .collect();
        assert!(lits.contains(&"0"));
        assert!(lits.contains(&"1.0e3"));
        assert!(lits.contains(&"2"));
    }

    #[test]
    fn raw_identifiers_lose_their_prefix() {
        let toks = lex("let r#type = 1;");
        assert!(toks.iter().any(|t| t.is_ident("type")));
    }
}

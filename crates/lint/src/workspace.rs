//! Workspace loading: deterministic walk of the `src/` trees, manifest
//! (`Cargo.toml`) parsing for `[[bin]]` targets, and the artifact files
//! the cross-artifact rules compare against.

use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::source::{parse_allow_rules, SourceFile};

/// Why the workspace could not be loaded.
#[derive(Debug)]
pub enum LintError {
    /// An I/O failure while reading the workspace, with the path involved.
    Io(PathBuf, io::Error),
    /// The given root is not a workspace (no `Cargo.toml` with a
    /// `[workspace]` table found there or above).
    NoWorkspaceRoot(PathBuf),
}

impl fmt::Display for LintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LintError::Io(path, e) => write!(f, "{}: {e}", path.display()),
            LintError::NoWorkspaceRoot(start) => write!(
                f,
                "no workspace root (Cargo.toml with [workspace]) at or above {}",
                start.display()
            ),
        }
    }
}

impl std::error::Error for LintError {}

/// One `[[bin]]` declaration from a manifest.
#[derive(Debug)]
pub struct BinDecl {
    /// `name = "..."` value, if present in the section.
    pub name: Option<String>,
    /// `path = "..."` value, if present in the section.
    pub path: Option<String>,
    /// 1-based line of the `[[bin]]` header.
    pub line: u32,
}

/// A parsed-enough `Cargo.toml`: its `[[bin]]` sections plus
/// `# lint: allow(...)` escapes (TOML comments use `#`, so the Rust
/// lexer does not apply here).
#[derive(Debug)]
pub struct Manifest {
    /// Workspace-relative path of the manifest.
    pub rel_path: String,
    /// Declared binary targets, in file order.
    pub bins: Vec<BinDecl>,
    /// Escape map: suppressed line → allowed rule names.
    allows: BTreeMap<u32, Vec<String>>,
}

impl Manifest {
    /// Whether `rule` is escaped on `line` of this manifest.
    pub fn is_allowed(&self, rule: &str, line: u32) -> bool {
        self.allows
            .get(&line)
            .is_some_and(|rules| rules.iter().any(|r| r == rule))
    }

    /// Every `# lint: allow` escape, keyed by the line it suppresses —
    /// consumed by the stale-allow audit.
    pub fn allow_entries(&self) -> &BTreeMap<u32, Vec<String>> {
        &self.allows
    }
}

/// The loaded workspace: lexed sources, manifests and artifact files.
#[derive(Debug)]
pub struct Workspace {
    /// Absolute workspace root.
    pub root: PathBuf,
    /// All `.rs` files under the scanned `src/` trees, keyed by
    /// workspace-relative path (sorted, so every report is
    /// deterministic).
    pub files: BTreeMap<String, SourceFile>,
    /// Root and per-crate manifests, keyed by workspace-relative path.
    pub manifests: BTreeMap<String, Manifest>,
}

impl Workspace {
    /// Loads the workspace rooted at `root`: every `.rs` file under
    /// `src/` and `crates/*/src/`, plus the root and per-crate
    /// manifests. `third_party/` stand-ins and `target/` are never
    /// scanned.
    pub fn load(root: &Path) -> Result<Workspace, LintError> {
        let mut files = BTreeMap::new();
        let mut src_dirs = vec![root.join("src")];
        for crate_dir in sorted_dirs(&root.join("crates"))? {
            src_dirs.push(crate_dir.join("src"));
        }
        for dir in src_dirs {
            walk_rs(root, &dir, &mut files)?;
        }

        let mut manifests = BTreeMap::new();
        let mut manifest_paths = vec![root.join("Cargo.toml")];
        for crate_dir in sorted_dirs(&root.join("crates"))? {
            manifest_paths.push(crate_dir.join("Cargo.toml"));
        }
        for path in manifest_paths {
            if !path.is_file() {
                continue;
            }
            let text = read(&path)?;
            let rel = rel_path(root, &path);
            manifests.insert(rel.clone(), parse_manifest(rel, &text));
        }

        Ok(Workspace {
            root: root.to_path_buf(),
            files,
            manifests,
        })
    }

    /// Reads a workspace-relative artifact file (EXPERIMENTS.md, a
    /// golden, ...), or `None` when absent.
    pub fn read_artifact(&self, rel: &str) -> Option<String> {
        fs::read_to_string(self.root.join(rel)).ok()
    }

    /// Whether a workspace-relative path exists on disk.
    pub fn artifact_exists(&self, rel: &str) -> bool {
        self.root.join(rel).exists()
    }
}

/// Ascends from `start` to the first directory whose `Cargo.toml`
/// declares a `[workspace]`.
pub fn find_root(start: &Path) -> Result<PathBuf, LintError> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            let text = read(&manifest)?;
            if text.contains("[workspace]") {
                return Ok(dir);
            }
        }
        if !dir.pop() {
            return Err(LintError::NoWorkspaceRoot(start.to_path_buf()));
        }
    }
}

fn read(path: &Path) -> Result<String, LintError> {
    fs::read_to_string(path).map_err(|e| LintError::Io(path.to_path_buf(), e))
}

/// Immediate subdirectories of `dir`, sorted by name; empty when `dir`
/// does not exist (fixture workspaces omit trees they don't exercise).
fn sorted_dirs(dir: &Path) -> Result<Vec<PathBuf>, LintError> {
    let mut out = Vec::new();
    let entries = match fs::read_dir(dir) {
        Ok(entries) => entries,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(out),
        Err(e) => return Err(LintError::Io(dir.to_path_buf(), e)),
    };
    for entry in entries {
        let entry = entry.map_err(|e| LintError::Io(dir.to_path_buf(), e))?;
        if entry.path().is_dir() {
            out.push(entry.path());
        }
    }
    out.sort();
    Ok(out)
}

fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Recursively collects `.rs` files under `dir` (sorted traversal).
fn walk_rs(
    root: &Path,
    dir: &Path,
    files: &mut BTreeMap<String, SourceFile>,
) -> Result<(), LintError> {
    let entries = match fs::read_dir(dir) {
        Ok(entries) => entries,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(()),
        Err(e) => return Err(LintError::Io(dir.to_path_buf(), e)),
    };
    let mut paths: Vec<PathBuf> = Vec::new();
    for entry in entries {
        paths.push(
            entry
                .map_err(|e| LintError::Io(dir.to_path_buf(), e))?
                .path(),
        );
    }
    paths.sort();
    for path in paths {
        if path.is_dir() {
            walk_rs(root, &path, files)?;
        } else if path.extension().is_some_and(|ext| ext == "rs") {
            let text = read(&path)?;
            let rel = rel_path(root, &path);
            files.insert(rel.clone(), SourceFile::new(rel, &text));
        }
    }
    Ok(())
}

/// Line-oriented manifest scan: tracks `[[bin]]` sections, their
/// `name`/`path` keys, and `# lint: allow(...)` comments. This is not a
/// TOML parser — it only needs the workspace's declared-target
/// convention, and unknown syntax degrades to "no bins seen".
fn parse_manifest(rel_path: String, text: &str) -> Manifest {
    let mut bins = Vec::new();
    let mut allows: BTreeMap<u32, Vec<String>> = BTreeMap::new();
    let mut in_bin = false;
    let mut pending_standalone: Option<Vec<String>> = None;
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx as u32 + 1;
        let line = raw.trim();
        // Escapes: trailing comments bind to their line, standalone
        // comment lines bind to the next non-comment line.
        if let Some(hash) = raw.find('#') {
            let rules = parse_allow_rules(&raw[hash..]);
            if !rules.is_empty() {
                if raw[..hash].trim().is_empty() {
                    pending_standalone = Some(rules);
                } else {
                    allows.entry(line_no).or_default().extend(rules);
                }
            }
        }
        if line.starts_with('#') {
            continue;
        }
        if let Some(rules) = pending_standalone.take() {
            if !line.is_empty() {
                allows.entry(line_no).or_default().extend(rules);
            } else {
                pending_standalone = Some(rules);
            }
        }
        if line.starts_with('[') {
            in_bin = line.starts_with("[[bin]]");
            if in_bin {
                bins.push(BinDecl {
                    name: None,
                    path: None,
                    line: line_no,
                });
            }
            continue;
        }
        if !in_bin {
            continue;
        }
        if let Some(decl) = bins.last_mut() {
            if let Some(value) = toml_string_value(line, "name") {
                decl.name = Some(value);
            } else if let Some(value) = toml_string_value(line, "path") {
                decl.path = Some(value);
            }
        }
    }
    Manifest {
        rel_path,
        bins,
        allows,
    }
}

/// Extracts `key = "value"` from a TOML line, if it assigns `key`.
fn toml_string_value(line: &str, key: &str) -> Option<String> {
    let rest = line.strip_prefix(key)?.trim_start();
    let rest = rest.strip_prefix('=')?.trim_start();
    let rest = rest.strip_prefix('"')?;
    Some(rest[..rest.find('"')?].to_owned())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manifest_bin_sections_are_parsed() {
        let text = "\
[package]
name = \"demo\"

[[bin]]
name = \"tool_a\"
path = \"src/bin/tool_a.rs\"

# lint: allow(bin-sources) — generated at build time
[[bin]]
name = \"tool_b\"
path = \"src/bin/tool_b.rs\"
";
        let m = parse_manifest("Cargo.toml".into(), text);
        assert_eq!(m.bins.len(), 2);
        assert_eq!(m.bins[0].name.as_deref(), Some("tool_a"));
        assert_eq!(m.bins[0].path.as_deref(), Some("src/bin/tool_a.rs"));
        assert_eq!(m.bins[1].line, 9);
        assert!(m.is_allowed("bin-sources", 9));
        assert!(!m.is_allowed("bin-sources", 4));
    }

    #[test]
    fn toml_values_ignore_non_assignments() {
        assert_eq!(
            toml_string_value("name = \"x\"", "name").as_deref(),
            Some("x")
        );
        assert_eq!(toml_string_value("rename = \"x\"", "name"), None);
        assert_eq!(toml_string_value("name.workspace = true", "name"), None);
    }
}

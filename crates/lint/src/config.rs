//! Lint configuration: which crates are determinism-critical, which
//! (struct, key-function) pairs must stay field-complete, and where the
//! cross-artifact sources of truth live.
//!
//! The defaults describe *this* workspace; fixture tests reuse them
//! over miniature workspace trees that mirror the same paths.

/// One structural cache-key completeness obligation: every field of
/// `struct_name` must be consumed by `fn_name`, or a memo cache keyed by
/// that function can serve stale results after the struct grows a field
/// (the PR 4 class of bug).
#[derive(Debug, Clone)]
pub struct KeyPair {
    /// Struct whose fields define the configuration space.
    pub struct_name: &'static str,
    /// Workspace-relative file declaring the struct.
    pub struct_file: &'static str,
    /// Function that must consume every field.
    pub fn_name: &'static str,
    /// Workspace-relative file declaring the function.
    pub fn_file: &'static str,
    /// When set, the function is resolved inside the `impl` block whose
    /// header mentions this type (disambiguates e.g. multiple `fn fmt`).
    pub impl_for: Option<&'static str>,
    /// What the function keys (for diagnostics).
    pub role: &'static str,
}

/// Full rule configuration.
#[derive(Debug, Clone)]
pub struct LintConfig {
    /// Directory names under `crates/` whose code feeds content keys,
    /// sweep output or goldens.
    pub determinism_crates: Vec<&'static str>,
    /// Structural key-completeness obligations.
    pub key_pairs: Vec<KeyPair>,
    /// File holding the covert-channel registry rows.
    pub registry_file: &'static str,
    /// Document that must mention every registry entry.
    pub docs_file: &'static str,
    /// Directory of experiment spec sources (each `fn name` return value
    /// is a spec).
    pub experiments_dir: &'static str,
    /// Directory that must hold `<spec>.txt` for every registered spec.
    pub golden_dir: &'static str,
    /// Documentation files whose `leaky-frontends/...` schema mentions
    /// must match a defined constant (the schema-sync docs leg).
    pub schema_docs: Vec<&'static str>,
    /// Workspace-relative directory of committed scenario files
    /// (profiles and bundles); every `.toml` there must declare a
    /// defined schema constant and be documented.
    pub scenario_dir: &'static str,
}

impl Default for LintConfig {
    fn default() -> Self {
        LintConfig {
            determinism_crates: vec![
                "exp", "bench", "stats", "core", "store", "trace", "lint", "scenario",
            ],
            key_pairs: vec![
                KeyPair {
                    struct_name: "FrontendGeometry",
                    struct_file: "crates/isa/src/geom.rs",
                    fn_name: "hash_geometry",
                    fn_file: "crates/uarch/src/profile.rs",
                    impl_for: None,
                    role: "profile fingerprints / plan-cache keys",
                },
                KeyPair {
                    struct_name: "CostModel",
                    struct_file: "crates/uarch/src/costs.rs",
                    fn_name: "hash_costs",
                    fn_file: "crates/uarch/src/profile.rs",
                    impl_for: None,
                    role: "profile fingerprints / plan-cache keys",
                },
                KeyPair {
                    struct_name: "FrontendConfig",
                    struct_file: "crates/frontend/src/engine.rs",
                    fn_name: "profile_key",
                    fn_file: "crates/frontend/src/engine.rs",
                    impl_for: Some("FrontendConfig"),
                    role: "delivery-plan and backend-throughput memo keys",
                },
                KeyPair {
                    struct_name: "ChannelParams",
                    struct_file: "crates/core/src/params.rs",
                    fn_name: "fmt",
                    fn_file: "crates/core/src/params.rs",
                    impl_for: Some("ChannelParams"),
                    role: "sweep provenance (run identity in JSON output)",
                },
            ],
            registry_file: "crates/core/src/channels/registry.rs",
            docs_file: "EXPERIMENTS.md",
            experiments_dir: "crates/exp/src/experiments",
            golden_dir: "crates/bench/tests/golden",
            schema_docs: vec!["README.md", "DESIGN.md", "EXPERIMENTS.md"],
            scenario_dir: "scenarios",
        }
    }
}

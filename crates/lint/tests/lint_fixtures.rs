//! Fixture-corpus tests: `bad_ws` seeds exactly one violation per rule
//! and every one must be caught; `clean_ws` is the same workspace with
//! each violation escaped via `lint: allow(...)` and must pass — so
//! these tests pin both directions of every rule (detection and
//! suppression) against real on-disk mini-workspaces.

use std::path::PathBuf;

use leaky_lint::{check_workspace, LintConfig, RULES};

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

#[test]
fn bad_fixture_trips_every_rule_exactly_once() {
    let diags = check_workspace(&fixture("bad_ws"), &LintConfig::default())
        .expect("fixture workspace loads");
    for rule in RULES {
        let hits: Vec<_> = diags.iter().filter(|d| d.rule == rule.name).collect();
        assert_eq!(
            hits.len(),
            1,
            "rule `{}` should fire exactly once in bad_ws, got: {hits:#?}",
            rule.name
        );
    }
    assert_eq!(
        diags.len(),
        RULES.len(),
        "no diagnostics beyond the seeded ones: {diags:#?}"
    );
}

#[test]
fn bad_fixture_diagnostics_anchor_to_the_seeded_files() {
    let diags = check_workspace(&fixture("bad_ws"), &LintConfig::default())
        .expect("fixture workspace loads");
    let anchor = |rule: &str| {
        diags
            .iter()
            .find(|d| d.rule == rule)
            .unwrap_or_else(|| panic!("rule {rule} missing"))
            .file
            .clone()
    };
    assert_eq!(anchor("wall-clock"), "crates/core/src/lib.rs");
    assert_eq!(anchor("ambient-rng"), "crates/core/src/lib.rs");
    assert_eq!(anchor("unordered-collections"), "crates/store/src/lib.rs");
    assert_eq!(anchor("panic-path"), "crates/isa/src/geom.rs");
    assert_eq!(anchor("trace-zero-cost"), "crates/exp/src/telemetry.rs");
    assert_eq!(anchor("stale-allow"), "crates/store/src/lib.rs");
    assert_eq!(anchor("schema-sync"), "crates/store/src/lib.rs");
    assert_eq!(anchor("key-completeness"), "crates/uarch/src/profile.rs");
    assert_eq!(
        anchor("registry-docs"),
        "crates/core/src/channels/registry.rs"
    );
    assert_eq!(anchor("spec-goldens"), "crates/exp/src/experiments/mod.rs");
    assert_eq!(anchor("bin-sources"), "crates/core/Cargo.toml");
    assert_eq!(anchor("scenario-files"), "scenarios/rogue.toml");
}

#[test]
fn panic_path_rendering_is_deterministic_and_exact() {
    let message = |diags: &[leaky_lint::Diagnostic]| {
        diags
            .iter()
            .find(|d| d.rule == "panic-path")
            .expect("panic-path fires in bad_ws")
            .message
            .clone()
    };
    let first = message(
        &check_workspace(&fixture("bad_ws"), &LintConfig::default()).expect("fixture loads"),
    );
    let second = message(
        &check_workspace(&fixture("bad_ws"), &LintConfig::default()).expect("fixture loads"),
    );
    // The rendered call path is a stable artifact: baselines and the
    // JSON output match on it byte-for-byte, so the exact text —
    // including the shortest path chosen through the fixture's
    // two-call chain — is pinned here.
    assert_eq!(first, second, "two runs must render identically");
    assert_eq!(
        first,
        "pub fn `first` lacks a `# Panics` doc but can reach a panic: \
         first \u{2192} smallest \u{2192} deepest \u{2192} .unwrap() (crates/isa/src/geom.rs); \
         document the contract on the entry point or break the path"
    );
}

#[test]
fn clean_fixture_escapes_suppress_every_violation() {
    let diags = check_workspace(&fixture("clean_ws"), &LintConfig::default())
        .expect("fixture workspace loads");
    assert!(
        diags.is_empty(),
        "clean_ws must be clean — escapes failed for: {diags:#?}"
    );
}

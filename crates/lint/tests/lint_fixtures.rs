//! Fixture-corpus tests: `bad_ws` seeds exactly one violation per rule
//! and every one must be caught; `clean_ws` is the same workspace with
//! each violation escaped via `lint: allow(...)` and must pass — so
//! these tests pin both directions of every rule (detection and
//! suppression) against real on-disk mini-workspaces.

use std::path::PathBuf;

use leaky_lint::{check_workspace, LintConfig, RULES};

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

#[test]
fn bad_fixture_trips_every_rule_exactly_once() {
    let diags = check_workspace(&fixture("bad_ws"), &LintConfig::default())
        .expect("fixture workspace loads");
    for rule in RULES {
        let hits: Vec<_> = diags.iter().filter(|d| d.rule == rule.name).collect();
        assert_eq!(
            hits.len(),
            1,
            "rule `{}` should fire exactly once in bad_ws, got: {hits:#?}",
            rule.name
        );
    }
    assert_eq!(
        diags.len(),
        RULES.len(),
        "no diagnostics beyond the seeded ones: {diags:#?}"
    );
}

#[test]
fn bad_fixture_diagnostics_anchor_to_the_seeded_files() {
    let diags = check_workspace(&fixture("bad_ws"), &LintConfig::default())
        .expect("fixture workspace loads");
    let anchor = |rule: &str| {
        diags
            .iter()
            .find(|d| d.rule == rule)
            .unwrap_or_else(|| panic!("rule {rule} missing"))
            .file
            .clone()
    };
    assert_eq!(anchor("wall-clock"), "crates/core/src/lib.rs");
    assert_eq!(anchor("ambient-rng"), "crates/core/src/lib.rs");
    assert_eq!(anchor("unordered-collections"), "crates/store/src/lib.rs");
    assert_eq!(anchor("panic"), "crates/isa/src/geom.rs");
    assert_eq!(anchor("key-completeness"), "crates/uarch/src/profile.rs");
    assert_eq!(
        anchor("registry-docs"),
        "crates/core/src/channels/registry.rs"
    );
    assert_eq!(anchor("spec-goldens"), "crates/exp/src/experiments/mod.rs");
    assert_eq!(anchor("bin-sources"), "crates/core/Cargo.toml");
}

#[test]
fn clean_fixture_escapes_suppress_every_violation() {
    let diags = check_workspace(&fixture("clean_ws"), &LintConfig::default())
        .expect("fixture workspace loads");
    assert!(
        diags.is_empty(),
        "clean_ws must be clean — escapes failed for: {diags:#?}"
    );
}

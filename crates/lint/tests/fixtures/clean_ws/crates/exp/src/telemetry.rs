//! Telemetry plumbing fixture: the same pre-built-event emit as bad_ws,
//! escaped on its own line.

pub fn traced_step(hook: &TraceHook, event: TraceEvent) {
    hook.emit(event); // lint: allow(trace-zero-cost) — fixture exception
}

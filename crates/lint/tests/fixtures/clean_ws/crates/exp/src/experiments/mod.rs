//! Two experiment specs: `pinned_grid` has a committed golden;
//! `demo_grid` does not, but carries the escape.

pub struct PinnedGrid;

impl PinnedGrid {
    pub fn name(&self) -> &'static str {
        "pinned_grid"
    }
}

pub struct DemoGrid;

impl DemoGrid {
    // lint: allow(spec-goldens) — demo spec, output is illustrative only
    pub fn name(&self) -> &'static str {
        "demo_grid"
    }
}

//! Result-store fixture crate: the same violation site as bad_ws,
//! escaped on its own line.

pub fn index() -> usize {
    // lint: allow(unordered-collections) — membership only, never iterated
    let seen = HashSet::new();
    seen.len()
}

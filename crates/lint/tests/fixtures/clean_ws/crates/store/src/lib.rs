//! Result-store fixture crate: the same violation site as bad_ws,
//! escaped on its own line.

pub fn index() -> usize {
    // lint: allow(unordered-collections) — membership only, never iterated
    let seen = HashSet::new();
    seen.len()
}

pub fn capacity() -> usize {
    // lint: allow(stale-allow) — twin: the escape below is deliberately dead
    16 // lint: allow(wall-clock) — stale: nothing here reads a clock
}

pub fn schema() -> &'static str {
    "leaky-frontends/results/v1" // lint: allow(schema-sync) — fixture exception
}

pub const SCENARIO_SCHEMA: &str = "leaky-frontends/scenario/v1";

//! Key functions. `hash_geometry` still omits `ways`, but the key
//! function carries a standalone escape.

// lint: allow(key-completeness) — `ways` is derived from `sets` in this fixture
pub fn hash_geometry(g: &FrontendGeometry) -> u64 {
    g.sets as u64
}

pub fn hash_costs(c: &CostModel) -> u64 {
    c.hit
}

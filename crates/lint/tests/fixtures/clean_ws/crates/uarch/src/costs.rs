//! Cost-model key pair: complete (`hash_costs` consumes `hit`).

pub struct CostModel {
    pub hit: u64,
}

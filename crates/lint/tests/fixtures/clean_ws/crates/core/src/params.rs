//! ChannelParams key pair: complete (the Display impl consumes `d`).

pub struct ChannelParams {
    pub d: usize,
}

impl fmt::Display for ChannelParams {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "d={}", self.d)
    }
}

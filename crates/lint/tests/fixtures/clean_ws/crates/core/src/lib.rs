//! Determinism-critical fixture crate: the same two violation sites
//! as bad_ws, each escaped on its own line.

pub fn stamp() -> u64 {
    let t = Instant::now(); // lint: allow(wall-clock) — operator telemetry only
    t.elapsed().as_nanos() as u64
}

pub fn noise() -> u64 {
    thread_rng().gen() // lint: allow(ambient-rng) — fixture exception
}

//! Registry fixture: `beta` is undocumented but explicitly escaped.

pub struct ChannelInfo {
    pub name: &'static str,
}

pub const REGISTRY: [ChannelInfo; 2] = [
    ChannelInfo { name: "alpha" },
    ChannelInfo { name: "beta" }, // lint: allow(registry-docs) — internal-only channel
];

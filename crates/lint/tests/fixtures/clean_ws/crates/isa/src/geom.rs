//! Geometry key pair struct; the unwrap site carries its escape.

pub struct FrontendGeometry {
    pub sets: usize,
    pub ways: usize,
}

pub fn first(v: &[u32]) -> u32 {
    v.first().copied().unwrap() // lint: allow(panic) — caller guarantees non-empty
}

//! Geometry key pair struct; the deep unwrap site carries its escape,
//! so the public entry sits on no unescaped panic path.

pub struct FrontendGeometry {
    pub sets: usize,
    pub ways: usize,
}

pub fn first(v: &[u32]) -> u32 {
    smallest(v)
}

fn smallest(v: &[u32]) -> u32 {
    deepest(v)
}

fn deepest(v: &[u32]) -> u32 {
    v.first().copied().unwrap() // lint: allow(panic-path) — caller guarantees non-empty
}

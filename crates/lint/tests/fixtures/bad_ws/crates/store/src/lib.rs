//! Result-store fixture crate: one seeded violation. The store's
//! directory listings feed resume decisions, so it is determinism-lint
//! territory like the sweep crates.

pub fn index() -> usize {
    let seen = HashSet::new();
    seen.len()
}

//! Result-store fixture crate: one seeded violation. The store's
//! directory listings feed resume decisions, so it is determinism-lint
//! territory like the sweep crates.

pub fn index() -> usize {
    let seen = HashSet::new();
    seen.len()
}

pub fn capacity() -> usize {
    16 // lint: allow(wall-clock) — stale: nothing here reads a clock
}

pub fn schema() -> &'static str {
    "leaky-frontends/results/v1"
}

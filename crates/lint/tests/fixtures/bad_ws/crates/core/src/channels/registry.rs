//! Registry fixture: `beta` is not mentioned in EXPERIMENTS.md.

pub struct ChannelInfo {
    pub name: &'static str,
}

pub const REGISTRY: [ChannelInfo; 2] = [
    ChannelInfo { name: "alpha" },
    ChannelInfo { name: "beta" },
];

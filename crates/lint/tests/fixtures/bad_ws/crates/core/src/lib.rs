//! Determinism-critical fixture crate: three seeded violations.

pub fn stamp() -> u64 {
    let t = Instant::now();
    t.elapsed().as_nanos() as u64
}

pub fn noise() -> u64 {
    thread_rng().gen()
}

pub fn tally() -> usize {
    let m = HashMap::new();
    m.len()
}

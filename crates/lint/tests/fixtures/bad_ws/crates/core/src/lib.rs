//! Determinism-critical fixture crate: two seeded violations
//! (the unordered-collections seed lives in the store fixture crate).

pub fn stamp() -> u64 {
    let t = Instant::now();
    t.elapsed().as_nanos() as u64
}

pub fn noise() -> u64 {
    thread_rng().gen()
}

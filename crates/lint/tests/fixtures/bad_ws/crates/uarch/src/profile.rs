//! Key functions. `hash_geometry` omits `ways` — the seeded
//! `key-completeness` violation.

pub fn hash_geometry(g: &FrontendGeometry) -> u64 {
    g.sets as u64
}

pub fn hash_costs(c: &CostModel) -> u64 {
    c.hit
}

//! Telemetry plumbing fixture: the emit call passes a pre-built event
//! instead of a closure (the seeded `trace-zero-cost` violation).

pub fn traced_step(hook: &TraceHook, event: TraceEvent) {
    hook.emit(event);
}

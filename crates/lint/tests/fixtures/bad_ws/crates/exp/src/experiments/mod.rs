//! Two experiment specs: `pinned_grid` has a committed golden,
//! `demo_grid` does not (the seeded `spec-goldens` violation).

pub struct PinnedGrid;

impl PinnedGrid {
    pub fn name(&self) -> &'static str {
        "pinned_grid"
    }
}

pub struct DemoGrid;

impl DemoGrid {
    pub fn name(&self) -> &'static str {
        "demo_grid"
    }
}

//! FrontendConfig key pair: complete (`profile_key` consumes `lsd`).

pub struct FrontendConfig {
    pub lsd: bool,
}

impl FrontendConfig {
    pub fn profile_key(&self) -> u64 {
        self.lsd as u64
    }
}

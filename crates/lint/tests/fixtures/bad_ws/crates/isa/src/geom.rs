//! Geometry key pair struct, plus the seeded `panic` violation.

pub struct FrontendGeometry {
    pub sets: usize,
    pub ways: usize,
}

pub fn first(v: &[u32]) -> u32 {
    v.first().copied().unwrap()
}

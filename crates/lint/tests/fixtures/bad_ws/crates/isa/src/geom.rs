//! Geometry key pair struct, plus the seeded `panic-path` violation:
//! the public entry reaches the unwrap two private calls deep.

pub struct FrontendGeometry {
    pub sets: usize,
    pub ways: usize,
}

pub fn first(v: &[u32]) -> u32 {
    smallest(v)
}

fn smallest(v: &[u32]) -> u32 {
    deepest(v)
}

fn deepest(v: &[u32]) -> u32 {
    v.first().copied().unwrap()
}

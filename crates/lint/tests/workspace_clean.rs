//! Self-test: the real workspace must be lint-clean modulo the committed
//! baseline ratchet (`lint-baseline.json`). This is the same
//! check CI runs via `cargo run -p leaky_lint -- check`, wired into
//! `cargo test` so a violation fails the ordinary test suite too.

use std::path::PathBuf;

use leaky_lint::baseline::{Baseline, BASELINE_FILE};
use leaky_lint::{check_workspace, LintConfig, Workspace};

fn workspace_root() -> PathBuf {
    // crates/lint/../.. == the workspace root.
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root resolves")
}

#[test]
fn the_workspace_is_lint_clean_modulo_the_committed_baseline() {
    let root = workspace_root();
    let diags = check_workspace(&root, &LintConfig::default()).expect("workspace loads");
    let baseline = match std::fs::read_to_string(root.join(BASELINE_FILE)) {
        Ok(text) => Baseline::parse(&text).expect("committed baseline parses"),
        Err(_) => Baseline::empty(),
    };
    let new: Vec<_> = diags.iter().filter(|d| !baseline.contains(d)).collect();
    assert!(
        new.is_empty(),
        "workspace has unbaselined lint violations:\n{}",
        new.iter()
            .map(|d| format!("  {d}"))
            .collect::<Vec<_>>()
            .join("\n")
    );
    // The ratchet only tightens: every pinned finding must still exist,
    // so a fixed violation cannot silently come back later.
    let stale = baseline.stale(&diags);
    assert!(
        stale.is_empty(),
        "baseline pins findings that no longer fire — shrink {BASELINE_FILE}:\n{stale:#?}"
    );
}

#[test]
fn the_scan_actually_covers_the_workspace() {
    // Guard against a silent no-op: if the walker ever stops finding the
    // crates (renamed dirs, broken root detection), an "all clean" result
    // would be meaningless. The workspace has well over 50 source files.
    let ws = Workspace::load(&workspace_root()).expect("workspace loads");
    assert!(
        ws.files.len() > 50,
        "suspiciously few files scanned: {}",
        ws.files.len()
    );
    assert!(
        ws.manifests.len() > 10,
        "suspiciously few manifests scanned: {}",
        ws.manifests.len()
    );
}

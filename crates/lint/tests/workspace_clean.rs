//! Self-test: the real workspace must be lint-clean. This is the same
//! check CI runs via `cargo run -p leaky_lint -- check`, wired into
//! `cargo test` so a violation fails the ordinary test suite too.

use std::path::PathBuf;

use leaky_lint::{check_workspace, LintConfig, Workspace};

fn workspace_root() -> PathBuf {
    // crates/lint/../.. == the workspace root.
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root resolves")
}

#[test]
fn the_workspace_is_lint_clean() {
    let diags =
        check_workspace(&workspace_root(), &LintConfig::default()).expect("workspace loads");
    assert!(
        diags.is_empty(),
        "workspace has lint violations:\n{}",
        diags
            .iter()
            .map(|d| format!("  {d}"))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn the_scan_actually_covers_the_workspace() {
    // Guard against a silent no-op: if the walker ever stops finding the
    // crates (renamed dirs, broken root detection), an "all clean" result
    // would be meaningless. The workspace has well over 50 source files.
    let ws = Workspace::load(&workspace_root()).expect("workspace loads");
    assert!(
        ws.files.len() > 50,
        "suspiciously few files scanned: {}",
        ws.files.len()
    );
    assert!(
        ws.manifests.len() > 10,
        "suspiciously few manifests scanned: {}",
        ws.manifests.len()
    );
}

//! Execution-engine model: ports, issue/retire bandwidth and IPC
//! accounting.
//!
//! The paper's attack code is deliberately frontend-bound (§IV-D): the
//! 4-`mov`-+-1-`jmp` mix block spreads across ALU ports and avoids loads and
//! stores so the backend never becomes the bottleneck, and the §XI receiver
//! uses `nop`s that are renamed away entirely. This crate models just enough
//! of the backend to (a) verify that property, (b) bound throughput by
//! rename width and port contention, and (c) compute the IPC values used by
//! Fig. 4 and the fingerprinting side channel.
//!
//! Total loop time is `max(frontend delivery cycles, backend throughput
//! cycles)` — the classic bottleneck combination.
//!
//! # Examples
//!
//! ```
//! use leaky_backend::Backend;
//! use leaky_isa::{Addr, Block};
//!
//! let be = Backend::skylake();
//! let block = Block::mix(Addr::new(0x1000));
//! // 5 µops over ≥4-wide rename and 4 ALU ports: ~1.25 cycles.
//! let cyc = be.throughput_cycles(block.instructions());
//! assert!(cyc < 2.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

use leaky_isa::Instruction;

/// Backend width parameters (Skylake-like).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BackendConfig {
    /// µops renamed/allocated per cycle (Fig. 1: 4).
    pub rename_width: f64,
    /// Instructions retired per cycle.
    pub retire_width: f64,
    /// Number of execution ports (Fig. 1: 8).
    pub ports: usize,
}

impl BackendConfig {
    /// Skylake-family widths per the paper's Fig. 1.
    pub const fn skylake() -> Self {
        BackendConfig {
            rename_width: 4.0,
            retire_width: 4.0,
            ports: 8,
        }
    }
}

impl Default for BackendConfig {
    fn default() -> Self {
        Self::skylake()
    }
}

/// The execution-engine model.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Backend {
    config: BackendConfig,
}

impl Backend {
    /// Creates a backend with explicit widths.
    pub fn new(config: BackendConfig) -> Self {
        Backend { config }
    }

    /// Creates the default Skylake-like backend.
    pub fn skylake() -> Self {
        Backend {
            config: BackendConfig::skylake(),
        }
    }

    /// The width parameters.
    pub fn config(&self) -> BackendConfig {
        self.config
    }

    /// Minimum cycles the backend needs to execute the instruction sequence,
    /// bounded by rename bandwidth and by execution-port contention.
    ///
    /// Port contention uses the exact steady-state (fluid) bound: for every
    /// subset `S` of ports, the µops that can *only* issue to ports in `S`
    /// need at least `demand(S) / |S|` cycles; the binding constraint is the
    /// maximum over all subsets. This models loop throughput, where µops
    /// from adjacent iterations overlap freely.
    ///
    /// `nop`s consume rename bandwidth but no port.
    pub fn throughput_cycles(&self, instrs: &[Instruction]) -> f64 {
        debug_assert!(self.config.ports <= 8, "port masks are 8 bits");
        let mut uops = 0u64;
        // demand_by_mask[m] = µops whose port mask is exactly m.
        let mut demand_by_mask = [0u64; 256];
        for instr in instrs {
            uops += instr.uops() as u64;
            let mask = instr.port_mask();
            if mask.count() == 0 {
                continue; // renamed away (nop)
            }
            demand_by_mask[mask.bits() as usize] += instr.uops() as u64;
        }
        let mut port_bound: f64 = 0.0;
        for subset in 1usize..256 {
            let mut demand = 0u64;
            for (mask, &d) in demand_by_mask.iter().enumerate() {
                if d > 0 && mask & !subset == 0 {
                    demand += d;
                }
            }
            if demand > 0 {
                port_bound = port_bound.max(demand as f64 / subset.count_ones() as f64);
            }
        }
        let rename_bound = uops as f64 / self.config.rename_width;
        rename_bound.max(port_bound)
    }

    /// Combines frontend delivery time with backend throughput: the loop
    /// runs at the pace of its bottleneck.
    pub fn bottleneck_cycles(&self, frontend_cycles: f64, instrs: &[Instruction]) -> f64 {
        frontend_cycles.max(self.throughput_cycles(instrs))
    }

    /// Whether a sequence is frontend-bound given its frontend delivery
    /// cost — true for all the paper's attack blocks.
    pub fn is_frontend_bound(&self, frontend_cycles: f64, instrs: &[Instruction]) -> bool {
        frontend_cycles >= self.throughput_cycles(instrs)
    }
}

/// Accumulates instructions and cycles to compute IPC (instructions per
/// cycle), the observable of the §XI fingerprinting side channel and the
/// Fig. 4 metric.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct IpcMeter {
    instructions: u64,
    cycles: f64,
}

impl IpcMeter {
    /// Creates an empty meter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a batch of retired instructions and the cycles they took.
    pub fn record(&mut self, instructions: u64, cycles: f64) {
        self.instructions += instructions;
        self.cycles += cycles;
    }

    /// Retired instruction count.
    pub fn instructions(&self) -> u64 {
        self.instructions
    }

    /// Elapsed cycles.
    pub fn cycles(&self) -> f64 {
        self.cycles
    }

    /// Instructions per cycle, or 0 with no cycles.
    pub fn ipc(&self) -> f64 {
        if self.cycles <= 0.0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles
        }
    }

    /// Resets the meter.
    pub fn reset(&mut self) {
        *self = Self::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use leaky_isa::{Addr, Block, Instruction, LcpPattern, Opcode};

    #[test]
    fn mix_block_is_frontend_bound() {
        // §IV-D requirement 3: the mix block must not bottleneck on ports.
        let be = Backend::skylake();
        let block = Block::mix(Addr::new(0x1000));
        let backend = be.throughput_cycles(block.instructions());
        // Frontend needs ≥1.8 cycles (DSB) for this block; backend less.
        assert!(backend <= 1.8, "backend cost {backend}");
        assert!(be.is_frontend_bound(1.8, block.instructions()));
    }

    #[test]
    fn nops_cost_only_rename_bandwidth() {
        let be = Backend::skylake();
        let nops = vec![Instruction::new(Opcode::Nop); 100];
        let cyc = be.throughput_cycles(&nops);
        assert_eq!(cyc, 25.0); // 100 / rename width 4
    }

    #[test]
    fn port_contention_binds_single_port_ops() {
        let be = Backend::skylake();
        // 8 jmps can only use port 6: 8 cycles despite rename allowing 2.
        let jmps = vec![Instruction::new(Opcode::Jmp); 8];
        assert_eq!(be.throughput_cycles(&jmps), 8.0);
    }

    #[test]
    fn greedy_spreads_alu_ops() {
        let be = Backend::skylake();
        // 8 movs over 4 ALU ports: 2 cycles each port; rename bound also 2.
        let movs = vec![Instruction::new(Opcode::MovImm); 8];
        assert_eq!(be.throughput_cycles(&movs), 2.0);
    }

    #[test]
    fn lcp_loop_is_frontend_bound_by_far() {
        // Fig. 4's IPC ≈ 0.6: backend could do ~8 IPC; frontend dominates.
        let be = Backend::skylake();
        let block = Block::lcp_adds(Addr::new(0x1000), LcpPattern::Mixed, 16);
        let backend = be.throughput_cycles(block.instructions());
        assert!(backend < 10.0);
    }

    #[test]
    fn bottleneck_takes_max() {
        let be = Backend::skylake();
        let jmps = vec![Instruction::new(Opcode::Jmp); 8];
        assert_eq!(be.bottleneck_cycles(2.0, &jmps), 8.0);
        assert_eq!(be.bottleneck_cycles(20.0, &jmps), 20.0);
    }

    #[test]
    fn ipc_meter_math() {
        let mut m = IpcMeter::new();
        m.record(100, 50.0);
        assert_eq!(m.ipc(), 2.0);
        m.record(100, 50.0);
        assert_eq!(m.ipc(), 2.0);
        m.reset();
        assert_eq!(m.ipc(), 0.0);
    }
}

//! Quickstart: send a text message over the paper's fastest covert channel.
//!
//! Builds the Non-MT Fast Misalignment channel (§V-D) — the attack the
//! paper measured at 1.41 Mbps with ~0% error on the Xeon E-2288G — on a
//! simulated E-2288G core, transmits an ASCII string through the processor
//! frontend, and prints the achieved rate and error rate.
//!
//! Run with: `cargo run --release --example quickstart`

use leaky_frontends_repro::attacks::channels::non_mt::{NonMtChannel, NonMtKind};
use leaky_frontends_repro::attacks::params::{
    bits_to_bytes, bytes_to_bits, ChannelParams, EncodeMode,
};
use leaky_frontends_repro::cpu::ProcessorModel;

fn main() {
    let message = "The DSB never forgets.";
    println!("sending:  {message:?}");

    let mut channel = NonMtChannel::new(
        ProcessorModel::xeon_e2288g(),
        NonMtKind::Misalignment,
        EncodeMode::Fast,
        ChannelParams::misalignment_defaults(),
        42,
    );

    let sent_bits = bytes_to_bits(message.as_bytes());
    let run = channel.transmit(&sent_bits);

    let received = String::from_utf8_lossy(&bits_to_bytes(run.received())).into_owned();
    println!("received: {received:?}");
    println!(
        "rate: {:.1} Kbps, error rate: {:.2}% ({} bits in {:.2} ms of simulated time)",
        run.rate_kbps(),
        run.error_rate() * 100.0,
        run.sent().len(),
        run.seconds() * 1e3,
    );
    println!("paper reference (Table III, E-2288G): 1410.84 Kbps at 0.00% error");
}

//! The covert-channel zoo: run every timing and power channel the paper
//! demonstrates, on its preferred machine, and compare.
//!
//! Covers §V-A..§V-E and §VII: eviction- and misalignment-based channels
//! (non-MT stealthy/fast and MT), the LCP slow-switch channel, and the two
//! RAPL power channels.
//!
//! Run with: `cargo run --release --example covert_channel_zoo`

use leaky_frontends_repro::attacks::channels::mt::{MtChannel, MtKind};
use leaky_frontends_repro::attacks::channels::non_mt::{NonMtChannel, NonMtKind};
use leaky_frontends_repro::attacks::channels::power::PowerChannel;
use leaky_frontends_repro::attacks::channels::slow_switch::SlowSwitchChannel;
use leaky_frontends_repro::attacks::params::{ChannelParams, EncodeMode, MessagePattern};
use leaky_frontends_repro::attacks::run::ChannelRun;
use leaky_frontends_repro::cpu::ProcessorModel;

fn report(name: &str, run: &ChannelRun) {
    println!(
        "{name:<42} {:>10.2} Kbps {:>7.2}% error",
        run.rate_kbps(),
        run.error_rate() * 100.0
    );
}

fn main() {
    let msg = MessagePattern::Alternating.generate(96, 0);
    let power_msg = MessagePattern::Alternating.generate(24, 0);
    println!(
        "channel                                          rate          error\n{}",
        "-".repeat(72)
    );

    for (kind, params) in [
        (NonMtKind::Eviction, ChannelParams::eviction_defaults()),
        (
            NonMtKind::Misalignment,
            ChannelParams::misalignment_defaults(),
        ),
    ] {
        for mode in [EncodeMode::Stealthy, EncodeMode::Fast] {
            let mut ch = NonMtChannel::new(ProcessorModel::xeon_e2288g(), kind, mode, params, 7);
            report(
                &format!("non-MT {mode} {kind} (E-2288G)"),
                &ch.transmit(&msg),
            );
        }
    }

    for (kind, params) in [
        (MtKind::Eviction, ChannelParams::mt_defaults()),
        (
            MtKind::Misalignment,
            ChannelParams::mt_misalignment_defaults(),
        ),
    ] {
        let mut ch = MtChannel::new(ProcessorModel::gold_6226(), kind, params, 7)
            .expect("Gold 6226 has SMT");
        report(&format!("MT {kind} (Gold 6226)"), &ch.transmit(&msg));
    }

    let mut slow = SlowSwitchChannel::new(
        ProcessorModel::xeon_e2288g(),
        ChannelParams::slow_switch_defaults(),
        7,
    );
    report("non-MT slow-switch / LCP (E-2288G)", &slow.transmit(&msg));

    for kind in [NonMtKind::Eviction, NonMtKind::Misalignment] {
        let params = ChannelParams {
            d: if kind == NonMtKind::Eviction { 6 } else { 5 },
            ..ChannelParams::power_defaults()
        };
        let mut ch = PowerChannel::new(ProcessorModel::gold_6226(), kind, params, 7);
        report(
            &format!("non-MT power {kind} via RAPL (Gold 6226)"),
            &ch.transmit(&power_msg),
        );
    }

    println!("\nObservations (paper §VI-§VII):");
    println!(" * non-MT channels reach Mbps-class rates; MT channels are ~10x slower;");
    println!(" * fast variants beat stealthy ones; power channels sit near 0.5 Kbps,");
    println!("   capped by RAPL's ~20 kHz update interval.");
}

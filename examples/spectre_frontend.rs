//! The paper's Spectre v1 variant (§IX): transient execution encodes the
//! secret in *which DSB set* a mix block maps to, leaving the data and
//! instruction caches untouched — the stealthiest disclosure channel of
//! Table VII.
//!
//! Leaks a string through the frontend channel and compares its cache
//! footprint against the classic Flush+Reload gadget.
//!
//! Run with: `cargo run --release --example spectre_frontend`

use leaky_frontends_repro::spectre::attack::SpectreV1;
use leaky_frontends_repro::spectre::channels::ChannelKind;

/// Packs an ASCII string into 5-bit chunks (A-Z + a few symbols), the
/// paper's secret representation (§IX: "5 bit chunks").
fn to_chunks(s: &str) -> Vec<u8> {
    s.bytes().map(|b| b % 32).collect()
}

fn main() {
    let secret = "LEAKY FRONTENDS";
    let chunks = to_chunks(secret);
    println!(
        "victim secret: {secret:?} -> {} five-bit chunks",
        chunks.len()
    );

    for kind in [ChannelKind::Frontend, ChannelKind::L1dFlushReload] {
        let mut attack = SpectreV1::new(kind, chunks.clone(), 2022);
        let result = attack.leak();
        println!("\nchannel {kind}:");
        println!(
            "  recovered {} / {} chunks ({:.0}% accuracy)",
            result
                .recovered
                .iter()
                .zip(&result.actual)
                .filter(|(a, b)| a == b)
                .count(),
            chunks.len(),
            result.accuracy() * 100.0
        );
        println!(
            "  L1 miss rate {:.2}% ({} L1I + {} L1D misses)",
            result.l1_miss_rate() * 100.0,
            result.l1i_misses,
            result.l1d_misses
        );
    }

    println!("\nThe frontend variant recovers the same secret while displacing no");
    println!("cache lines at all — invisible to cache-based Spectre detectors");
    println!("(paper Table VII: 0.21% vs 4.79% for L1D Flush+Reload).");
}

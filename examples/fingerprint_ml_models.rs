//! Application fingerprinting (§XI): identify which CNN a victim is running
//! on the sibling hyper-thread by watching nothing but your own IPC with a
//! 10 Hz timer.
//!
//! The attacker loops over 100 `nop`s — no memory traffic, two L1I lines,
//! no performance counters — yet the victim's layer schedule shows through
//! the shared frontend.
//!
//! Run with: `cargo run --release --example fingerprint_ml_models`

use leaky_frontends_repro::attacks::fingerprint::ipc::{
    distance_summary, FingerprintLibrary, IpcSampler,
};
use leaky_frontends_repro::cpu::ProcessorModel;
use leaky_frontends_repro::workloads::cnn;

fn main() {
    let sampler = IpcSampler::default();
    let model = ProcessorModel::gold_6226();

    println!(
        "attacker baseline IPC (no victim): {:.2}  (paper: 3.58)\n",
        sampler.baseline_ipc(model, 1)
    );

    // Phase 1: build a reference library from observed traces.
    println!("building reference library (3 traces per CNN model)...");
    let references: Vec<(String, Vec<Vec<f64>>)> = cnn::models()
        .iter()
        .map(|w| (w.name().to_string(), sampler.trace_set(model, w, 3, 100)))
        .collect();
    let sets: Vec<Vec<Vec<f64>>> = references.iter().map(|(_, s)| s.clone()).collect();
    let d = distance_summary(&sets);
    println!(
        "intra-distance {:.2} vs inter-distance {:.2} (paper: 0.550 vs 1.937)\n",
        d.intra, d.inter
    );

    // Phase 2: a victim runs an unknown model; classify it.
    let library = FingerprintLibrary::new(references);
    for (i, victim) in cnn::models().iter().enumerate() {
        let trace = sampler.trace(model, victim, 7_000 + i as u64);
        let guess = library.classify(&trace);
        println!(
            "victim runs {:<12} -> attacker identifies {:<12} {}",
            victim.name(),
            guess,
            if guess == victim.name() {
                "CORRECT"
            } else {
                "wrong"
            }
        );
    }
}

//! SGX exfiltration (§VIII): a sender inside an enclave leaks a secret key
//! to an unprivileged receiver outside, using only frontend path switching.
//!
//! The receiver triggers the enclave once per bit and times the whole call
//! (one EENTER/EEXIT per bit, §VIII-2) — SGX's memory encryption and access
//! control never see anything wrong.
//!
//! Run with: `cargo run --release --example sgx_exfiltration`

use leaky_frontends_repro::attacks::channels::non_mt::NonMtKind;
use leaky_frontends_repro::attacks::params::{
    bits_to_bytes, bytes_to_bits, ChannelParams, EncodeMode,
};
use leaky_frontends_repro::attacks::sgx::SgxNonMtChannel;
use leaky_frontends_repro::cpu::ProcessorModel;

fn main() {
    // A 16-byte "sealing key" held inside the enclave.
    let secret_key: [u8; 16] = [
        0xde, 0xad, 0xbe, 0xef, 0x01, 0x23, 0x45, 0x67, 0x89, 0xab, 0xcd, 0xef, 0x10, 0x32, 0x54,
        0x76,
    ];
    println!("enclave secret: {}", hex(&secret_key));

    let mut channel = SgxNonMtChannel::new(
        ProcessorModel::xeon_e2174g(),
        NonMtKind::Eviction,
        EncodeMode::Fast,
        ChannelParams::sgx_non_mt_defaults(),
        99,
    )
    .expect("E-2174G supports SGX");

    let run = channel.transmit(&bytes_to_bits(&secret_key));
    let leaked = bits_to_bytes(run.received());
    println!("leaked:         {}", hex(&leaked));
    println!(
        "rate: {:.2} Kbps, error: {:.2}%, wall time: {:.1} ms",
        run.rate_kbps(),
        run.error_rate() * 100.0,
        run.seconds() * 1e3
    );
    let ok = leaked == secret_key;
    println!(
        "key recovered {} (paper Table VI: ~30 Kbps at <1.5% error on this machine)",
        if ok { "EXACTLY" } else { "with errors" }
    );
}

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}
